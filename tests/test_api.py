"""repro.api: the stable facade, keyword validation, deprecation shims
and the structured exhibit output that rides on them."""

import json
import warnings

import pytest

from repro import api
from repro.api import Exhibit, ExperimentContext, RunSettings

_SHORT = dict(horizon_ms=1.0, warmup_ms=5.0, seed=5)


class TestFacadeSurface:
    def test_all_names_importable(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_run_returns_traced_run(self):
        run = api.run("pmake", **_SHORT)
        assert isinstance(run, api.TracedRun)
        assert run.check_report is None

    def test_run_checked(self):
        run = api.run("pmake", check=True, **_SHORT)
        assert run.check_report is not None
        assert run.check_report.ok, run.check_report.to_text()

    def test_report_from_existing_run(self):
        run = api.run("pmake", **_SHORT)
        report = api.report("pmake", run=run)
        assert isinstance(report, api.AnalysisReport)

    def test_report_simulates_when_no_run_given(self):
        report = api.report("pmake", **_SHORT)
        assert report.os_stall_pct >= 0.0

    def test_sim_kwargs_pass_through(self):
        from repro.kernel.kernel import KernelTuning

        run = api.run("pmake", tuning=KernelTuning(quantum_ms=30.0), **_SHORT)
        assert run.kernel.tuning.quantum_ms == 30.0


class TestKeywordValidation:
    def test_unknown_kwarg_rejected_with_names(self):
        with pytest.raises(TypeError) as excinfo:
            api.run("pmake", horizon=5.0)
        message = str(excinfo.value)
        assert "'horizon'" in message
        assert "horizon_ms" in message  # the valid names are listed

    def test_report_validates_too(self):
        with pytest.raises(TypeError, match="sede"):
            api.report("pmake", sede=3)

    def test_valid_settings_accepted(self):
        # Every RunSettings field spelled correctly goes through.
        run = api.run("pmake", horizon_ms=1.0, warmup_ms=5.0, seed=9)
        assert run is not None


class TestStrictContextOverrides:
    def test_unknown_override_rejected(self):
        ctx = ExperimentContext(RunSettings(**_SHORT))
        with pytest.raises(TypeError) as excinfo:
            ctx.run("pmake", horizont_ms=2.0)
        message = str(excinfo.value)
        assert "'horizont_ms'" in message
        assert "horizon_ms" in message

    def test_report_override_rejected(self):
        ctx = ExperimentContext(RunSettings(**_SHORT))
        with pytest.raises(TypeError):
            ctx.report("pmake", sneed=1)

    def test_valid_overrides_still_work(self):
        ctx = ExperimentContext(RunSettings(**_SHORT))
        run = ctx.run("pmake", seed=11)
        assert run is ctx.run("pmake", seed=11)  # memoized per override set

    def test_checked_override(self):
        ctx = ExperimentContext(RunSettings(**_SHORT))
        run = ctx.run("pmake", check=True)
        assert run.check_report is not None
        assert ctx.all_runs() == [run]


class TestDeprecationShims:
    def test_sim_session_warns_and_aliases(self):
        import importlib

        import repro.sim.session

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.reload(repro.sim.session)
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "repro.api" in str(w.message)
            for w in caught
        )
        # Class identity is preserved: isinstance checks keep working.
        assert repro.sim.session.Simulation is api.Simulation
        assert repro.sim.session.TracedRun is api.TracedRun
        assert repro.sim.session.run_traced_workload is api.run_traced_workload

    def test_experiments_base_warns_and_aliases(self):
        import importlib

        import repro.experiments.base

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.reload(repro.experiments.base)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert repro.experiments.base.Exhibit is api.Exhibit
        assert repro.experiments.base.ExperimentContext is ExperimentContext
        assert repro.experiments.base.RunSettings is RunSettings

    def test_shimmed_run_matches_facade_run(self):
        """The deprecated path yields identical results, not just types."""
        from repro.sim.session import run_traced_workload as old_path

        old = old_path(workload="pmake", **_SHORT)
        new = api.run("pmake", **_SHORT)
        assert old.workload_name == new.workload_name
        assert (
            max(p.cycles for p in old.processors)
            == max(p.cycles for p in new.processors)
        )


class TestExhibitJson:
    def _exhibit(self):
        exhibit = Exhibit("table0", "A title", ("a", "b"))
        exhibit.add_row("x", 1.5)
        exhibit.add_row("y", 2)
        exhibit.note("a note")
        return exhibit

    def test_round_trip(self):
        exhibit = self._exhibit()
        clone = Exhibit.from_dict(json.loads(exhibit.to_json()))
        assert clone.to_text() == exhibit.to_text()
        assert clone.to_dict() == exhibit.to_dict()

    def test_coverage_round_trips(self):
        exhibit = self._exhibit()
        exhibit.check_coverage.append("sanitizers [pmake]: clean (...)")
        clone = Exhibit.from_dict(exhibit.to_dict())
        assert clone.check_coverage == exhibit.check_coverage
        assert "check: sanitizers" in clone.to_text()

    def test_unchecked_dict_has_no_coverage_key(self):
        assert "check_coverage" not in self._exhibit().to_dict()

    def test_add_check_coverage_skips_unchecked_runs(self):
        exhibit = self._exhibit()
        run = api.run("pmake", **_SHORT)
        exhibit.add_check_coverage(run)
        assert exhibit.check_coverage == []

    def test_add_check_coverage_records_checked_runs(self):
        exhibit = self._exhibit()
        run = api.run("pmake", check=True, **_SHORT)
        exhibit.add_check_coverage(run)
        assert len(exhibit.check_coverage) == 1
        assert "clean" in exhibit.check_coverage[0]


class TestCliJsonFormat:
    def test_json_output_parses_and_matches_text(self, tmp_path, capsys):
        from repro.experiments.cli import main

        argv_common = [
            "run", "table11", "--horizon-ms", "1", "--warmup-ms", "5",
            "--seed", "5", "--jobs", "1", "--cache-dir", str(tmp_path),
        ]
        assert main(argv_common) == 0
        text_out = capsys.readouterr().out
        assert main(argv_common + ["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        exhibit = Exhibit.from_dict(payload[0])
        assert exhibit.exhibit_id == "table11"
        # The JSON carries exactly what the text rendering shows.
        assert exhibit.to_text() in text_out


class TestExhibitFacade:
    def test_exhibit_builds_without_cache(self):
        exhibit = api.exhibit("table11", cache=False, **_SHORT)
        assert exhibit.exhibit_id == "table11"
        assert exhibit.rows

    def test_exhibit_uses_cache(self, tmp_path):
        from repro.api import RunCache

        cache = RunCache(cache_dir=tmp_path / "c")
        cold = api.exhibit("table11", cache=cache, **_SHORT)
        warm_cache = RunCache(cache_dir=tmp_path / "c")
        warm = api.exhibit("table11", cache=warm_cache, **_SHORT)
        assert warm_cache.hits >= 1 and warm_cache.stores == 0
        assert warm.to_json() == cold.to_json()

    def test_exhibit_rejects_unknown_setting(self):
        with pytest.raises(TypeError, match="horizont_ms"):
            api.exhibit("table11", horizont_ms=1.0)

    def test_exhibit_rejects_ctx_plus_settings(self):
        ctx = ExperimentContext(RunSettings(**_SHORT))
        with pytest.raises(TypeError, match="not both"):
            api.exhibit("table11", ctx=ctx, horizon_ms=1.0)

    def test_exhibit_with_shared_ctx_memoizes_runs(self):
        ctx = ExperimentContext(RunSettings(**_SHORT))
        first = api.exhibit("table11", ctx=ctx)
        second = api.exhibit("table11", ctx=ctx)
        assert first.to_json() == second.to_json()

    def test_list_exhibits_metadata(self):
        listed = api.list_exhibits()
        ids = [meta["id"] for meta in listed]
        assert "table1" in ids and "figure4" in ids
        for meta in listed:
            assert set(meta) == {
                "id", "title", "kind", "paper", "has_chart", "description",
            }
        by_id = {meta["id"]: meta for meta in listed}
        assert by_id["table1"]["kind"] == "table"
        assert by_id["figure4"]["kind"] == "figure"
        assert by_id["table1"]["paper"] is True


class TestCoverageJsonRoundTrip:
    def test_check_coverage_survives_json(self):
        """Regression: the JSON wire format (what repro.service serves)
        must carry check_coverage through from_dict intact."""
        exhibit = Exhibit("table0", "A title", ("a", "b"))
        exhibit.add_row("x", 1.5)
        exhibit.check_coverage.append("sanitizers [pmake]: clean (...)")
        wire = json.loads(exhibit.to_json())
        clone = Exhibit.from_dict(wire)
        assert clone.check_coverage == exhibit.check_coverage
        assert clone.to_json() == exhibit.to_json()

    def test_checked_exhibit_json_round_trip(self):
        ctx = ExperimentContext(
            RunSettings(horizon_ms=1.0, warmup_ms=5.0, seed=5, check=True)
        )
        exhibit = api.exhibit("table11", ctx=ctx)
        assert exhibit.check_coverage, "checked build must record coverage"
        clone = Exhibit.from_dict(json.loads(exhibit.to_json()))
        assert clone.check_coverage == exhibit.check_coverage
        assert clone.to_json() == exhibit.to_json()
