"""Property-based tests on the memory system's coherence and accounting."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.common.params import CacheGeometry, MachineParams
from repro.common.types import MissClass, RefDomain
from repro.memsys.system import MemorySystem

# Small caches so invariants get exercised quickly.
SMALL = MachineParams(
    num_cpus=2,
    icache=CacheGeometry(1024),
    dcache_l1=CacheGeometry(1024),
    dcache_l2=CacheGeometry(4096),
)

# An access: (cpu, block, kind) with kind in {read, write, ifetch}.
ACCESS = st.tuples(
    st.integers(0, 1),
    st.integers(0, 600),
    st.sampled_from(["read", "write", "ifetch"]),
)


def replay(accesses):
    memsys = MemorySystem(SMALL)
    time = 0
    for cpu, block, kind in accesses:
        time += 1
        if kind == "read":
            memsys.dread(time, cpu, block, RefDomain.OS, 0)
        elif kind == "write":
            memsys.dwrite(time, cpu, block, RefDomain.OS, 0)
        else:
            memsys.ifetch(time, cpu, block, RefDomain.OS, 0)
    return memsys


@settings(max_examples=40, deadline=None)
@given(st.lists(ACCESS, max_size=300))
def test_written_block_resident_only_where_written(accesses):
    """After any sequence, a block last written by CPU c cannot be
    resident in another CPU's data cache (write-invalidate)."""
    memsys = replay(accesses)
    last_writer = {}
    for i, (cpu, block, kind) in enumerate(accesses):
        if kind == "write":
            last_writer[block] = (i, cpu)
    for block, (when, writer) in last_writer.items():
        # Only if nobody read it afterwards (reads re-share the block).
        reread = any(
            b == block and k == "read" and i > when
            for i, (c, b, k) in enumerate(accesses)
        )
        if reread:
            continue
        for hierarchy in memsys.hierarchies:
            if hierarchy.cpu != writer:
                assert not hierarchy.data_resident(block)


@settings(max_examples=40, deadline=None)
@given(st.lists(ACCESS, max_size=300))
def test_miss_counts_match_bus_traffic(accesses):
    """Classified misses == cacheable bus transactions minus upgrades
    (an upgrade is a write txn for an already-resident block)."""
    memsys = replay(accesses)
    classified = sum(
        count
        for (_d, _k, cls), count in memsys.truth.counts.items()
        if cls is not MissClass.UNCACHED
    )
    assert classified <= memsys.bus_reads + memsys.bus_writes
    assert memsys.bus.transaction_count == memsys.total_bus_transactions()


@settings(max_examples=40, deadline=None)
@given(st.lists(ACCESS, max_size=200))
def test_classification_total_is_total_misses(accesses):
    """Every miss lands in exactly one Table 2 class."""
    memsys = replay(accesses)
    per_class = memsys.truth.class_counts()
    assert sum(per_class.values()) == memsys.truth.total_misses()
    assert all(count >= 0 for count in per_class.values())


@settings(max_examples=30, deadline=None)
@given(st.lists(ACCESS, max_size=200), st.integers(0, 600))
def test_flush_then_refetch_is_inval(accesses, probe):
    """Whatever happened before, after a full I-cache flush the next
    fetch of a previously-cached block classifies as Inval."""
    memsys = replay(accesses)
    memsys.ifetch(10_000, 0, probe, RefDomain.OS, 0)
    memsys.flush_all_icaches()
    before = memsys.truth.class_counts(kind="I").get(MissClass.INVAL, 0)
    memsys.ifetch(10_001, 0, probe, RefDomain.OS, 0)
    after = memsys.truth.class_counts(kind="I").get(MissClass.INVAL, 0)
    assert after == before + 1
