"""Analytic OS-activity model: fitting, prediction, generation."""

import pytest

from repro.analysis.decode import AppInterval, OsInvocation, TraceAnalysis
from repro.analysis.model import OsActivityModel, validate_model
from repro.analysis.report import analyze_trace
from repro.common.rng import substream


def synthetic_analysis(num=50) -> TraceAnalysis:
    analysis = TraceAnalysis("syn", 4)
    analysis.invocations = [
        OsInvocation("io_syscall", i * 1000, 100, 10, 20) for i in range(num)
    ]
    analysis.app_intervals = [
        AppInterval(400, 4, 6, 2) for _ in range(num)
    ]
    analysis.utlb_count = 100
    analysis.utlb_misses = 10
    return analysis


class TestFit:
    def test_phase_means(self):
        model = OsActivityModel.from_analysis(synthetic_analysis())
        assert model.os_phase.mean_cycles == pytest.approx(200)   # 100 ticks
        assert model.app_phase.mean_cycles == pytest.approx(800)
        assert model.os_phase.mean_imisses == 10
        assert model.utlb_per_app_interval == pytest.approx(2.0)
        assert model.utlb_misses_per_fault == pytest.approx(0.1)

    def test_constant_durations_have_zero_cv(self):
        model = OsActivityModel.from_analysis(synthetic_analysis())
        assert model.os_phase.cv_cycles == pytest.approx(0.0)

    def test_empty_analysis_rejected(self):
        with pytest.raises(ValueError):
            OsActivityModel.from_analysis(TraceAnalysis("e", 4))


class TestPredictions:
    @pytest.fixture
    def model(self):
        return OsActivityModel.from_analysis(synthetic_analysis())

    def test_os_time_share(self, model):
        assert model.os_time_share == pytest.approx(200 / 1000)

    def test_invocation_interval(self, model):
        assert model.invocation_interval_cycles == pytest.approx(1000)

    def test_os_miss_share(self, model):
        # OS 30 misses vs app 10 + 0.2 utlb misses per period.
        assert model.predicted_os_miss_share() == pytest.approx(
            30 / (30 + 10 + 0.2)
        )

    def test_os_stall(self, model):
        assert model.predicted_os_stall_pct() == pytest.approx(
            100.0 * 30 * 35 / 1000
        )

    def test_total_stall_exceeds_os_stall(self, model):
        assert model.predicted_total_stall_pct() > model.predicted_os_stall_pct()


class TestGeneration:
    def test_generated_means_match(self):
        model = OsActivityModel.from_analysis(synthetic_analysis())
        rng = substream(0, "model")
        draws = model.generate(rng, 3000)
        app_mean = sum(a for a, _o in draws) / len(draws)
        os_mean = sum(o for _a, o in draws) / len(draws)
        assert app_mean == pytest.approx(800, rel=0.1)
        assert os_mean == pytest.approx(200, rel=0.1)

    def test_draws_nonnegative(self):
        model = OsActivityModel.from_analysis(synthetic_analysis())
        rng = substream(1, "model")
        assert all(a >= 0 and o >= 0 for a, o in model.generate(rng, 200))


class TestAgainstRealTrace:
    def test_model_matches_measurement(self, nowarmup_report):
        """The fitted model's aggregates must land near the direct
        measurements — the consistency check Figure 3's data enables."""
        analysis = nowarmup_report.analysis
        model = OsActivityModel.from_analysis(analysis)
        checks = validate_model(model, analysis)
        predicted_share, measured_share = checks["os_time_share"]
        # The renewal model ignores idle-loop OS time and nesting, so
        # agree loosely: within a factor of two and same order.
        assert predicted_share == pytest.approx(measured_share, rel=0.8)
        predicted_miss, measured_miss = checks["os_miss_share"]
        assert predicted_miss == pytest.approx(measured_miss, abs=0.25)
