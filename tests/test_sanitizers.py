"""repro.sanitizers: lockdep, race and coherence invariant checking.

Two kinds of tests: *adversarial* ones inject exactly one violation —
an out-of-order lock acquisition, an unlocked Process Table write, a
double-dirty cache line — and assert the matching checker reports
exactly that, fully attributed; *clean* ones assert the real kernel
(including full simulated runs of every workload) passes with zero
violations.
"""

import pickle

import pytest

from repro.common.types import HighLevelOp
from repro.kernel.process import ProcState
from repro.kernel.structures import StructName
from repro.sanitizers import CheckRegistry
from repro.sanitizers.races import STRUCT_PROTECTION
from repro.sim.session import Simulation, run_traced_workload
from repro.sim.usermode import LIBRARY_SPINS, SPIN_CYCLES, UserLock
from repro.workloads import actions as A
from tests.test_kernel_core import make_kernel


def make_checked_kernel(num_cpus=4):
    """A bare machine with the full sanitizer registry installed."""
    kernel, cpus = make_kernel(num_cpus=num_cpus)
    checks = CheckRegistry(num_cpus, kernel.datamap, "test").install(
        kernel, cpus, kernel.memsys
    )
    return kernel, cpus, checks


def violations(checks, checker=None, kind=None):
    found = checks.report_data.violations
    if checker is not None:
        found = [v for v in found if v.checker == checker]
    if kind is not None:
        found = [v for v in found if v.kind == kind]
    return found


# ----------------------------------------------------------------------
# Lockdep
# ----------------------------------------------------------------------
class TestLockdep:
    def test_out_of_order_acquisition_reported(self):
        """The injected inversion: memlock -> ifree then ifree -> memlock."""
        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        with locks.held(cpus[0], "memlock"):
            with locks.held(cpus[0], "ifree"):
                pass
        with locks.held(cpus[1], "ifree"):
            with locks.held(cpus[1], "memlock"):
                pass
        found = violations(checks, "lockdep", "lock-order-cycle")
        assert len(found) == 1
        violation = found[0]
        # Attributed to the acquiring CPU, naming both lock families and
        # both acquisition sites of the inverting edge.
        assert violation.cpu == 1
        assert "memlock" in violation.message and "ifree" in violation.message
        assert violation.details["new_edge"] == "ifree -> memlock"
        assert "test_sanitizers.py" in violation.details["held_at"]
        assert "test_sanitizers.py" in violation.details["acquired_at"]
        # The cycle chain shows the previously recorded reverse edge too.
        assert any("memlock -> ifree" in step
                   for step in violation.details["cycle"])

    def test_consistent_order_is_clean(self):
        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        for cpu in (0, 1, 0):
            with locks.held(cpus[cpu], "memlock"):
                with locks.held(cpus[cpu], "ifree"):
                    pass
        assert checks.report_data.ok

    def test_inversion_reported_once(self):
        """A real inversion recurs; the pair is reported only once."""
        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        with locks.held(cpus[0], "memlock"):
            with locks.held(cpus[0], "ifree"):
                pass
        for _ in range(3):
            with locks.held(cpus[1], "ifree"):
                with locks.held(cpus[1], "memlock"):
                    pass
        assert len(violations(checks, "lockdep", "lock-order-cycle")) == 1

    def test_same_family_nesting_is_self_cycle(self):
        """Nothing orders instances within a lock array."""
        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        with locks.held_lock(cpus[0], locks.ino(1)):
            with locks.held_lock(cpus[0], locks.ino(2)):
                pass
        found = violations(checks, "lockdep", "lock-order-cycle")
        assert len(found) == 1
        assert found[0].details["new_edge"] == "ino_x -> ino_x"

    def test_recursive_acquire_reported(self):
        kernel, cpus, checks = make_checked_kernel()
        lock = kernel.locks.lock("calock")
        checks.lockdep.on_acquire(0, 100, lock)
        checks.lockdep.on_acquire(0, 200, lock)
        found = violations(checks, "lockdep", "recursive-acquire")
        assert len(found) == 1
        assert "calock" in found[0].message

    def test_held_at_context_switch_reported(self):
        kernel, cpus, checks = make_checked_kernel()
        kernel.locks.acquire(cpus[0], kernel.locks.lock("memlock"))
        checks.lockdep.on_context_switch(0, cpus[0].cycles)
        found = violations(checks, "lockdep", "held-at-context-switch")
        assert len(found) == 1
        assert "memlock" in found[0].details["held"][0]

    def test_held_at_interrupt_entry_reported(self):
        kernel, cpus, checks = make_checked_kernel()
        kernel.locks.acquire(cpus[2], kernel.locks.lock("runqlk"))
        checks.lockdep.on_interrupt_entry(2, cpus[2].cycles, "CLOCK")
        found = violations(checks, "lockdep", "held-at-interrupt-entry")
        assert len(found) == 1
        assert found[0].cpu == 2
        assert "CLOCK" in found[0].message

    def test_held_at_finish_reported(self):
        kernel, cpus, checks = make_checked_kernel()
        kernel.locks.acquire(cpus[0], kernel.locks.lock("semlock"))
        checks.lockdep.finalize(12345)
        assert len(violations(checks, "lockdep", "held-at-finish")) == 1

    def test_balanced_use_leaves_no_held_state(self):
        kernel, cpus, checks = make_checked_kernel()
        with kernel.locks.held(cpus[0], "memlock"):
            pass
        checks.lockdep.finalize(99999)
        checks.coherence.scan(99999)
        assert checks.report_data.ok


# ----------------------------------------------------------------------
# Race checker
# ----------------------------------------------------------------------
class TestRaceChecker:
    def test_unlocked_proc_table_write_attributed(self):
        """The injected race: write another CPU's running process entry."""
        kernel, cpus, checks = make_checked_kernel()
        from repro.kernel.process import Image

        image = Image("x", text_pages=2, file_ino=1)
        process = kernel.create_process("p", image, iter(()))
        process.state = ProcState.RUNNING
        kernel.current[1] = process
        cpus[0].dwrite(kernel.datamap.proc_entry(process.slot))
        found = violations(checks, "race", "unlocked-write")
        assert len(found) == 1
        violation = found[0]
        assert violation.cpu == 0
        assert violation.details["structure"] == "Process Table"
        assert violation.details["slot"] == process.slot
        assert violation.details["running_on"] == "cpu1"
        assert violation.details["held_locks"] == "(none)"

    def test_proc_table_write_under_runqlk_is_clean(self):
        kernel, cpus, checks = make_checked_kernel()
        with kernel.locks.held(cpus[0], "runqlk"):
            cpus[0].dwrite(kernel.datamap.proc_entry(3))
        assert checks.report_data.ok

    def test_own_entry_write_is_clean(self):
        """A process's syscalls update its own entry locklessly (IRIX)."""
        kernel, cpus, checks = make_checked_kernel()
        from repro.kernel.process import Image

        image = Image("x", text_pages=2, file_ino=1)
        process = kernel.create_process("p", image, iter(()))
        process.state = ProcState.RUNNING
        kernel.current[0] = process
        cpus[0].dwrite(kernel.datamap.proc_entry(process.slot))
        assert checks.report_data.ok

    def test_proc_table_read_is_lock_free(self):
        kernel, cpus, checks = make_checked_kernel()
        cpus[0].dread(kernel.datamap.proc_entry(5))
        assert checks.report_data.ok

    def test_run_queue_read_requires_runqlk(self):
        kernel, cpus, checks = make_checked_kernel()
        cpus[0].dread(kernel.datamap.runq_base)
        found = violations(checks, "race", "unlocked-read")
        assert len(found) == 1
        assert found[0].details["structure"] == "Run Queue"
        assert found[0].details["required"] == "runqlk"

    def test_callout_write_requires_calock(self):
        kernel, cpus, checks = make_checked_kernel()
        cpus[0].dwrite(kernel.datamap.callout_entry(0))
        found = violations(checks, "race", "unlocked-write")
        assert len(found) == 1
        assert found[0].details["structure"] == "Callout"

    def test_either_protecting_family_suffices(self):
        """Inode headers may be covered by ino_x or the ifree list lock."""
        kernel, cpus, checks = make_checked_kernel()
        with kernel.locks.held_lock(cpus[0], kernel.locks.ino(2)):
            cpus[0].dwrite(kernel.datamap.inode_entry(2))
        with kernel.locks.held(cpus[0], "ifree"):
            cpus[0].dwrite(kernel.datamap.inode_entry(3))
        assert checks.report_data.ok

    def test_race_exempt_annotation_suppresses(self):
        kernel, cpus, checks = make_checked_kernel()
        with kernel.race_exempt(cpus[0], StructName.CALLOUT):
            cpus[0].dwrite(kernel.datamap.callout_entry(1))
        assert checks.report_data.ok
        # The exemption is scoped: the same write outside it fires.
        cpus[0].dwrite(kernel.datamap.callout_entry(1))
        assert not checks.report_data.ok

    def test_race_exempt_is_per_cpu(self):
        kernel, cpus, checks = make_checked_kernel()
        with kernel.race_exempt(cpus[0], StructName.CALLOUT):
            cpus[1].dwrite(kernel.datamap.callout_entry(1))
        assert len(violations(checks, "race")) == 1

    def test_race_exempt_nests(self):
        kernel, cpus, checks = make_checked_kernel()
        with kernel.race_exempt(cpus[0], StructName.CALLOUT):
            with kernel.race_exempt(cpus[0], StructName.CALLOUT):
                pass
            cpus[0].dwrite(kernel.datamap.callout_entry(1))
        assert checks.report_data.ok

    def test_exempt_without_checks_is_noop(self):
        kernel, cpus = make_kernel()
        assert kernel.checks is None
        with kernel.race_exempt(cpus[0], StructName.CALLOUT):
            cpus[0].dwrite(kernel.datamap.callout_entry(1))

    def test_protection_map_covers_locked_structures(self):
        """Every Table 11 lock family protects at least one structure."""
        protected = {
            family
            for rule in STRUCT_PROTECTION.values()
            for family in rule.families
        }
        for family in ("runqlk", "memlock", "calock", "semlock",
                       "bfreelock", "ifree", "ino_x", "shr_x"):
            assert family in protected


# ----------------------------------------------------------------------
# Coherence checker
# ----------------------------------------------------------------------
# An address outside the kernel-structure window, so the race checker
# stays quiet while the coherence checker is exercised.
_ADDR = 0x50_0000


class TestCoherenceChecker:
    def test_double_dirty_line_attributed(self):
        """The injected fault: sneak a stale copy into another L2."""
        kernel, cpus, checks = make_checked_kernel()
        memsys = kernel.memsys
        block = _ADDR // memsys.block_bytes
        cpus[0].dwrite(_ADDR)
        assert memsys._owner[block] == 0
        memsys.hierarchies[1].dl2.access(block)  # behind the bus's back
        found = checks.coherence.scan(end_cycles=1000)
        assert len(found) == 1
        violation = found[0]
        assert violation.kind == "double-dirty"
        assert violation.details["line"] == hex(block * memsys.block_bytes)
        assert violation.details["owner"] == "cpu0"
        assert violation.details["stale_copy"] == "cpu1"

    def test_snoop_invalidate_is_clean(self):
        """Normal write sharing: ownership migrates, remote tags clear."""
        kernel, cpus, checks = make_checked_kernel()
        memsys = kernel.memsys
        block = _ADDR // memsys.block_bytes
        cpus[0].dwrite(_ADDR)
        cpus[1].dwrite(_ADDR)
        assert memsys._owner[block] == 1
        assert not memsys.hierarchies[0].dl2.lookup(block)
        checks.coherence.scan(end_cycles=1000)
        assert checks.report_data.ok

    def test_read_downgrades_exclusive_line(self):
        kernel, cpus, checks = make_checked_kernel()
        memsys = kernel.memsys
        block = _ADDR // memsys.block_bytes
        cpus[0].dwrite(_ADDR)
        cpus[1].dread(_ADDR)
        assert block not in memsys._owner
        checks.coherence.scan(end_cycles=1000)
        assert checks.report_data.ok

    def test_silent_write_fill_detected(self):
        """Stale ownership (the bug class the owner-map fix removed):
        the owner's line vanishes but the map still says it owns it, so
        its next write fills with no bus transaction."""
        kernel, cpus, checks = make_checked_kernel()
        memsys = kernel.memsys
        block = _ADDR // memsys.block_bytes
        cpus[0].dwrite(_ADDR)
        memsys.hierarchies[0].invalidate_data(block)  # owner map now stale
        cpus[0].dwrite(_ADDR)
        found = violations(checks, "coherence", "silent-write-fill")
        assert len(found) == 1
        assert found[0].details["line"] == hex(block * memsys.block_bytes)

    def test_full_icache_flush_checked(self):
        kernel, cpus, checks = make_checked_kernel()
        memsys = kernel.memsys
        cpus[0].ifetch_range(0x1_0000, 256)
        memsys.flush_all_icaches()
        assert checks.coherence.flushes_checked == 1
        assert checks.report_data.ok
        # Injected incomplete flush: a line resurrected behind the back.
        memsys.hierarchies[1].icache.access(5)
        checks.coherence.after_full_icache_flush()
        found = violations(checks, "coherence", "icache-flush-incomplete")
        assert len(found) == 1
        assert found[0].cpu == 1

    def test_write_miss_eviction_releases_ownership(self):
        """The regression the fix addressed: a write miss that evicts an
        owned victim must clear the victim's owner-map entry."""
        kernel, cpus, checks = make_checked_kernel()
        memsys = kernel.memsys
        ways = memsys.hierarchies[0].dl2.assoc
        sets = memsys.hierarchies[0].dl2.num_sets
        base_block = _ADDR // memsys.block_bytes
        # Fill one L2 set past associativity with owned lines.
        for i in range(ways + 1):
            cpus[0].dwrite((base_block + i * sets) * memsys.block_bytes)
        owned = [b for b in memsys._owner if memsys._owner[b] == 0]
        resident = [b for b in owned if memsys.hierarchies[0].dl2.lookup(b)]
        assert owned == resident  # no owned-but-evicted ghosts
        checks.coherence.scan(end_cycles=1000)
        assert checks.report_data.ok


# ----------------------------------------------------------------------
# The sginap backoff protocol (Table 8's library spin/yield discipline)
# ----------------------------------------------------------------------
class TestSginapBackoff:
    def _engine(self):
        from tests.test_engine import make_engine

        def driver(_i):
            yield A.Compute(10**9)

        return make_engine(driver)

    def test_twenty_spins_then_sginap(self):
        """Held beyond the library's patience: exactly 20 spins, one
        sginap syscall, and the acquire action is retained for retry."""
        kernel, cpus, engine, procs = self._engine()
        engine.user_locks[7] = UserLock(holder_pid=999)  # never releases
        action = A.UserLockAcquire(7)
        before = cpus[0].cycles
        engine._execute(cpus[0], procs[0], action, before + 10**9)
        assert action.spins_done == LIBRARY_SPINS
        assert engine.app_sync_spins == LIBRARY_SPINS
        assert engine.lock_sginaps == 1
        assert cpus[0].cycles - before >= LIBRARY_SPINS * SPIN_CYCLES
        assert kernel.invocation_ops[HighLevelOp.SGINAP_SYSCALL] == 1

    def test_short_wait_spins_out_without_sginap(self):
        """A hold interval ending within 20 spins is spun out in place."""
        kernel, cpus, engine, procs = self._engine()
        release_at = cpus[0].cycles + 10 * SPIN_CYCLES
        engine.user_locks[7] = UserLock(holder_pid=None,
                                        release_time=release_at)
        action = A.UserLockAcquire(7)
        engine._execute(cpus[0], procs[0], action, cpus[0].cycles + 10**9)
        assert engine.lock_sginaps == 0
        assert 0 < action.spins_done <= LIBRARY_SPINS
        assert engine.user_locks[7].holder_pid == procs[0].pid
        assert engine.user_locks[7].contended_acquires == 1

    def test_uncontended_acquire_never_spins(self):
        kernel, cpus, engine, procs = self._engine()
        action = A.UserLockAcquire(7)
        engine._execute(cpus[0], procs[0], action, cpus[0].cycles + 10**9)
        assert action.spins_done == 0
        assert engine.app_sync_spins == 0
        assert engine.lock_sginaps == 0

    def test_backoff_repeats_per_retry(self):
        kernel, cpus, engine, procs = self._engine()
        engine.user_locks[7] = UserLock(holder_pid=999)
        action = A.UserLockAcquire(7)
        for _ in range(3):
            engine._execute(cpus[0], procs[0], action,
                            cpus[0].cycles + 10**9)
        assert action.spins_done == 3 * LIBRARY_SPINS
        assert engine.lock_sginaps == 3


# ----------------------------------------------------------------------
# Table 12 locality counters under checked, deterministic contention
# ----------------------------------------------------------------------
class TestLocalityUnderChecking:
    def test_seeded_contention_counters_and_clean_lockdep(self):
        """A seeded contention scenario: counters must match a reference
        computation and lockdep must stay silent throughout."""
        import random

        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        rng = random.Random(1992)
        names = ["memlock", "runqlk", "ifree", "calock"]
        expected_local = {name: 0 for name in names}
        last_cpu = {}
        for _ in range(200):
            cpu = rng.randrange(4)
            name = rng.choice(names)
            if last_cpu.get(name) == cpu:
                expected_local[name] += 1
            last_cpu[name] = cpu
            with locks.held(cpus[cpu], name):
                cpus[cpu].advance(rng.randrange(50, 500))
        for name in names:
            stats = locks.lock(name).stats
            assert stats.same_cpu_no_intervening == expected_local[name]
            if stats.acquires:
                assert stats.locality_pct == pytest.approx(
                    100.0 * expected_local[name] / stats.acquires
                )
        assert checks.lockdep.acquires_checked == 200
        checks.lockdep.finalize(max(p.cycles for p in cpus))
        assert checks.report_data.ok

    def test_nested_contention_stays_ordered(self):
        """Consistent memlock -> ifree nesting across CPUs: contended,
        but never inverted — lockdep passes."""
        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        for round_index in range(20):
            cpu = round_index % 4
            with locks.held(cpus[cpu], "memlock"):
                with locks.held(cpus[cpu], "ifree"):
                    cpus[cpu].advance(200)
        assert locks.lock("memlock").stats.acquires == 20
        assert checks.report_data.ok


# ----------------------------------------------------------------------
# Full simulated runs
# ----------------------------------------------------------------------
class TestCheckedRuns:
    @pytest.mark.parametrize("workload", ["pmake", "multpgm", "oracle"])
    def test_short_run_is_clean(self, workload):
        run = run_traced_workload(
            workload=workload, horizon_ms=3.0, warmup_ms=20.0, seed=5,
            check=True,
        )
        report = run.check_report
        assert report is not None
        assert report.ok, report.to_text()
        # The checkers actually saw traffic.
        assert report.counters["lock_acquires"] > 0
        assert report.counters["structure_accesses"] > 0
        assert report.counters["bus_writes"] > 0

    def test_disabled_by_default(self):
        sim = Simulation("pmake", seed=3)
        assert sim.checks is None
        assert sim.kernel.checks is None
        assert sim.kernel.locks.checks is None
        assert sim.memsys.checker is None
        assert all(p.access_probe is None for p in sim.processors)

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        sim = Simulation("pmake", seed=3)
        assert sim.checks is not None

    def test_unchecked_run_has_no_report(self):
        run = run_traced_workload(
            workload="pmake", horizon_ms=1.0, warmup_ms=5.0, seed=5
        )
        assert run.check_report is None

    def test_checked_run_pickles_with_report(self):
        run = run_traced_workload(
            workload="pmake", horizon_ms=1.0, warmup_ms=5.0, seed=5,
            check=True,
        )
        clone = pickle.loads(pickle.dumps(run))
        report = clone.check_report
        assert report is not None and report.ok
        assert report.counters == run.check_report.counters

    def test_summary_names_workload(self):
        run = run_traced_workload(
            workload="pmake", horizon_ms=1.0, warmup_ms=5.0, seed=5,
            check=True,
        )
        assert "pmake" in run.check_report.summary()
        assert "clean" in run.check_report.summary()
