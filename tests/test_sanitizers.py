"""repro.sanitizers: lockdep, race and coherence invariant checking.

Two kinds of tests: *adversarial* ones inject exactly one violation —
an out-of-order lock acquisition, an unlocked Process Table write, a
double-dirty cache line — and assert the matching checker reports
exactly that, fully attributed; *clean* ones assert the real kernel
(including full simulated runs of every workload) passes with zero
violations.
"""

import pickle

import pytest

from repro.common.types import HighLevelOp
from repro.kernel.process import ProcState
from repro.kernel.structures import StructName
from repro.sanitizers import CheckRegistry
from repro.sanitizers.races import STRUCT_PROTECTION
from repro.api import Simulation, run_traced_workload
from repro.sim.usermode import LIBRARY_SPINS, SPIN_CYCLES, UserLock
from repro.workloads import actions as A
from tests.test_kernel_core import make_kernel


def make_checked_kernel(num_cpus=4):
    """A bare machine with the full sanitizer registry installed."""
    kernel, cpus = make_kernel(num_cpus=num_cpus)
    checks = CheckRegistry(num_cpus, kernel.datamap, "test").install(
        kernel, cpus, kernel.memsys
    )
    return kernel, cpus, checks


def violations(checks, checker=None, kind=None):
    found = checks.report_data.violations
    if checker is not None:
        found = [v for v in found if v.checker == checker]
    if kind is not None:
        found = [v for v in found if v.kind == kind]
    return found


# ----------------------------------------------------------------------
# Lockdep
# ----------------------------------------------------------------------
class TestLockdep:
    def test_out_of_order_acquisition_reported(self):
        """The injected inversion: memlock -> ifree then ifree -> memlock."""
        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        with locks.held(cpus[0], "memlock"):
            with locks.held(cpus[0], "ifree"):
                pass
        with locks.held(cpus[1], "ifree"):
            with locks.held(cpus[1], "memlock"):
                pass
        found = violations(checks, "lockdep", "lock-order-cycle")
        assert len(found) == 1
        violation = found[0]
        # Attributed to the acquiring CPU, naming both lock families and
        # both acquisition sites of the inverting edge.
        assert violation.cpu == 1
        assert "memlock" in violation.message and "ifree" in violation.message
        assert violation.details["new_edge"] == "ifree -> memlock"
        assert "test_sanitizers.py" in violation.details["held_at"]
        assert "test_sanitizers.py" in violation.details["acquired_at"]
        # The cycle chain shows the previously recorded reverse edge too.
        assert any("memlock -> ifree" in step
                   for step in violation.details["cycle"])

    def test_consistent_order_is_clean(self):
        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        for cpu in (0, 1, 0):
            with locks.held(cpus[cpu], "memlock"):
                with locks.held(cpus[cpu], "ifree"):
                    pass
        assert checks.report_data.ok

    def test_inversion_reported_once(self):
        """A real inversion recurs; the pair is reported only once."""
        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        with locks.held(cpus[0], "memlock"):
            with locks.held(cpus[0], "ifree"):
                pass
        for _ in range(3):
            with locks.held(cpus[1], "ifree"):
                with locks.held(cpus[1], "memlock"):
                    pass
        assert len(violations(checks, "lockdep", "lock-order-cycle")) == 1

    def test_same_family_nesting_is_self_cycle(self):
        """Nothing orders instances within a lock array."""
        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        with locks.held_lock(cpus[0], locks.ino(1)):
            with locks.held_lock(cpus[0], locks.ino(2)):
                pass
        found = violations(checks, "lockdep", "lock-order-cycle")
        assert len(found) == 1
        assert found[0].details["new_edge"] == "ino_x -> ino_x"

    def test_recursive_acquire_reported(self):
        kernel, cpus, checks = make_checked_kernel()
        lock = kernel.locks.lock("calock")
        checks.lockdep.on_acquire(0, 100, lock)
        checks.lockdep.on_acquire(0, 200, lock)
        found = violations(checks, "lockdep", "recursive-acquire")
        assert len(found) == 1
        assert "calock" in found[0].message

    def test_held_at_context_switch_reported(self):
        kernel, cpus, checks = make_checked_kernel()
        kernel.locks.acquire(cpus[0], kernel.locks.lock("memlock"))
        checks.lockdep.on_context_switch(0, cpus[0].cycles)
        found = violations(checks, "lockdep", "held-at-context-switch")
        assert len(found) == 1
        assert "memlock" in found[0].details["held"][0]

    def test_held_at_interrupt_entry_reported(self):
        kernel, cpus, checks = make_checked_kernel()
        kernel.locks.acquire(cpus[2], kernel.locks.lock("runqlk"))
        checks.lockdep.on_interrupt_entry(2, cpus[2].cycles, "CLOCK")
        found = violations(checks, "lockdep", "held-at-interrupt-entry")
        assert len(found) == 1
        assert found[0].cpu == 2
        assert "CLOCK" in found[0].message

    def test_held_at_finish_reported(self):
        kernel, cpus, checks = make_checked_kernel()
        kernel.locks.acquire(cpus[0], kernel.locks.lock("semlock"))
        checks.lockdep.finalize(12345)
        assert len(violations(checks, "lockdep", "held-at-finish")) == 1

    def test_balanced_use_leaves_no_held_state(self):
        kernel, cpus, checks = make_checked_kernel()
        with kernel.locks.held(cpus[0], "memlock"):
            pass
        checks.lockdep.finalize(99999)
        checks.coherence.scan(99999)
        assert checks.report_data.ok


# ----------------------------------------------------------------------
# Race checker
# ----------------------------------------------------------------------
class TestRaceChecker:
    def test_unlocked_proc_table_write_attributed(self):
        """The injected race: write another CPU's running process entry."""
        kernel, cpus, checks = make_checked_kernel()
        from repro.kernel.process import Image

        image = Image("x", text_pages=2, file_ino=1)
        process = kernel.create_process("p", image, iter(()))
        process.state = ProcState.RUNNING
        kernel.current[1] = process
        cpus[0].dwrite(kernel.datamap.proc_entry(process.slot))
        found = violations(checks, "race", "unlocked-write")
        assert len(found) == 1
        violation = found[0]
        assert violation.cpu == 0
        assert violation.details["structure"] == "Process Table"
        assert violation.details["slot"] == process.slot
        assert violation.details["running_on"] == "cpu1"
        assert violation.details["held_locks"] == "(none)"

    def test_proc_table_write_under_runqlk_is_clean(self):
        kernel, cpus, checks = make_checked_kernel()
        with kernel.locks.held(cpus[0], "runqlk"):
            cpus[0].dwrite(kernel.datamap.proc_entry(3))
        assert checks.report_data.ok

    def test_own_entry_write_is_clean(self):
        """A process's syscalls update its own entry locklessly (IRIX)."""
        kernel, cpus, checks = make_checked_kernel()
        from repro.kernel.process import Image

        image = Image("x", text_pages=2, file_ino=1)
        process = kernel.create_process("p", image, iter(()))
        process.state = ProcState.RUNNING
        kernel.current[0] = process
        cpus[0].dwrite(kernel.datamap.proc_entry(process.slot))
        assert checks.report_data.ok

    def test_proc_table_read_is_lock_free(self):
        kernel, cpus, checks = make_checked_kernel()
        cpus[0].dread(kernel.datamap.proc_entry(5))
        assert checks.report_data.ok

    def test_run_queue_read_requires_runqlk(self):
        kernel, cpus, checks = make_checked_kernel()
        cpus[0].dread(kernel.datamap.runq_base)
        found = violations(checks, "race", "unlocked-read")
        assert len(found) == 1
        assert found[0].details["structure"] == "Run Queue"
        assert found[0].details["required"] == "runqlk"

    def test_callout_write_requires_calock(self):
        kernel, cpus, checks = make_checked_kernel()
        cpus[0].dwrite(kernel.datamap.callout_entry(0))
        found = violations(checks, "race", "unlocked-write")
        assert len(found) == 1
        assert found[0].details["structure"] == "Callout"

    def test_either_protecting_family_suffices(self):
        """Inode headers may be covered by ino_x or the ifree list lock."""
        kernel, cpus, checks = make_checked_kernel()
        with kernel.locks.held_lock(cpus[0], kernel.locks.ino(2)):
            cpus[0].dwrite(kernel.datamap.inode_entry(2))
        with kernel.locks.held(cpus[0], "ifree"):
            cpus[0].dwrite(kernel.datamap.inode_entry(3))
        assert checks.report_data.ok

    def test_race_exempt_annotation_suppresses(self):
        kernel, cpus, checks = make_checked_kernel()
        with kernel.race_exempt(cpus[0], StructName.CALLOUT):
            cpus[0].dwrite(kernel.datamap.callout_entry(1))
        assert checks.report_data.ok
        # The exemption is scoped: the same write outside it fires.
        cpus[0].dwrite(kernel.datamap.callout_entry(1))
        assert not checks.report_data.ok

    def test_race_exempt_is_per_cpu(self):
        kernel, cpus, checks = make_checked_kernel()
        with kernel.race_exempt(cpus[0], StructName.CALLOUT):
            cpus[1].dwrite(kernel.datamap.callout_entry(1))
        assert len(violations(checks, "race")) == 1

    def test_race_exempt_nests(self):
        kernel, cpus, checks = make_checked_kernel()
        with kernel.race_exempt(cpus[0], StructName.CALLOUT):
            with kernel.race_exempt(cpus[0], StructName.CALLOUT):
                pass
            cpus[0].dwrite(kernel.datamap.callout_entry(1))
        assert checks.report_data.ok

    def test_exempt_without_checks_is_noop(self):
        kernel, cpus = make_kernel()
        assert kernel.checks is None
        with kernel.race_exempt(cpus[0], StructName.CALLOUT):
            cpus[0].dwrite(kernel.datamap.callout_entry(1))

    def test_protection_map_covers_locked_structures(self):
        """Every Table 11 lock family protects at least one structure."""
        protected = {
            family
            for rule in STRUCT_PROTECTION.values()
            for family in rule.families
        }
        for family in ("runqlk", "memlock", "calock", "semlock",
                       "bfreelock", "ifree", "ino_x", "shr_x"):
            assert family in protected


# ----------------------------------------------------------------------
# Coherence checker
# ----------------------------------------------------------------------
# An address outside the kernel-structure window, so the race checker
# stays quiet while the coherence checker is exercised.
_ADDR = 0x50_0000


class TestCoherenceChecker:
    def test_double_dirty_line_attributed(self):
        """The injected fault: sneak a stale copy into another L2."""
        kernel, cpus, checks = make_checked_kernel()
        memsys = kernel.memsys
        block = _ADDR // memsys.block_bytes
        cpus[0].dwrite(_ADDR)
        assert memsys._owner[block] == 0
        memsys.hierarchies[1].dl2.access(block)  # behind the bus's back
        found = checks.coherence.scan(end_cycles=1000)
        assert len(found) == 1
        violation = found[0]
        assert violation.kind == "double-dirty"
        assert violation.details["line"] == hex(block * memsys.block_bytes)
        assert violation.details["owner"] == "cpu0"
        assert violation.details["stale_copy"] == "cpu1"

    def test_snoop_invalidate_is_clean(self):
        """Normal write sharing: ownership migrates, remote tags clear."""
        kernel, cpus, checks = make_checked_kernel()
        memsys = kernel.memsys
        block = _ADDR // memsys.block_bytes
        cpus[0].dwrite(_ADDR)
        cpus[1].dwrite(_ADDR)
        assert memsys._owner[block] == 1
        assert not memsys.hierarchies[0].dl2.lookup(block)
        checks.coherence.scan(end_cycles=1000)
        assert checks.report_data.ok

    def test_read_downgrades_exclusive_line(self):
        kernel, cpus, checks = make_checked_kernel()
        memsys = kernel.memsys
        block = _ADDR // memsys.block_bytes
        cpus[0].dwrite(_ADDR)
        cpus[1].dread(_ADDR)
        assert block not in memsys._owner
        checks.coherence.scan(end_cycles=1000)
        assert checks.report_data.ok

    def test_silent_write_fill_detected(self):
        """Stale ownership (the bug class the owner-map fix removed):
        the owner's line vanishes but the map still says it owns it, so
        its next write fills with no bus transaction."""
        kernel, cpus, checks = make_checked_kernel()
        memsys = kernel.memsys
        block = _ADDR // memsys.block_bytes
        cpus[0].dwrite(_ADDR)
        memsys.hierarchies[0].invalidate_data(block)  # owner map now stale
        cpus[0].dwrite(_ADDR)
        found = violations(checks, "coherence", "silent-write-fill")
        assert len(found) == 1
        assert found[0].details["line"] == hex(block * memsys.block_bytes)

    def test_full_icache_flush_checked(self):
        kernel, cpus, checks = make_checked_kernel()
        memsys = kernel.memsys
        cpus[0].ifetch_range(0x1_0000, 256)
        memsys.flush_all_icaches()
        assert checks.coherence.flushes_checked == 1
        assert checks.report_data.ok
        # Injected incomplete flush: a line resurrected behind the back.
        memsys.hierarchies[1].icache.access(5)
        checks.coherence.after_full_icache_flush()
        found = violations(checks, "coherence", "icache-flush-incomplete")
        assert len(found) == 1
        assert found[0].cpu == 1

    def test_write_miss_eviction_releases_ownership(self):
        """The regression the fix addressed: a write miss that evicts an
        owned victim must clear the victim's owner-map entry."""
        kernel, cpus, checks = make_checked_kernel()
        memsys = kernel.memsys
        ways = memsys.hierarchies[0].dl2.assoc
        sets = memsys.hierarchies[0].dl2.num_sets
        base_block = _ADDR // memsys.block_bytes
        # Fill one L2 set past associativity with owned lines.
        for i in range(ways + 1):
            cpus[0].dwrite((base_block + i * sets) * memsys.block_bytes)
        owned = [b for b in memsys._owner if memsys._owner[b] == 0]
        resident = [b for b in owned if memsys.hierarchies[0].dl2.lookup(b)]
        assert owned == resident  # no owned-but-evicted ghosts
        checks.coherence.scan(end_cycles=1000)
        assert checks.report_data.ok


# ----------------------------------------------------------------------
# LL/SC checker (the cached-lock what-if shadow model)
# ----------------------------------------------------------------------
class TestLLSCChecker:
    def test_clean_protocol_validates_every_pair(self):
        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        for cpu in (0, 1, 0, 2):
            with locks.held(cpus[cpu], "runqlk"):
                cpus[cpu].advance(100)
        assert checks.llsc.pairs_validated == 4
        checks.llsc.finalize(max(p.cycles for p in cpus))
        assert checks.report_data.ok

    def test_sc_after_invalidation_attributed(self):
        """The injected fault: resurrect cpu0's lock-line copy after a
        remote store invalidated it, then let cpu0's SC succeed on it."""
        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        with locks.held(cpus[0], "memlock"):
            pass
        with locks.held(cpus[1], "memlock"):
            pass  # cpu1's store invalidated cpu0's copy in both models
        kernel.llsc._valid_copy["memlock"][0] = True  # behind the model's back
        # Move past cpu1's release so the next event is the uncontended
        # acquire itself (an LL/SC pair, not a spin read).
        cpus[0].advance_to(cpus[1].cycles + 1000)
        with locks.held(cpus[0], "memlock"):
            pass
        found = violations(checks, "llsc", "sc-after-invalidation")
        assert len(found) == 1
        violation = found[0]
        assert violation.cpu == 0
        assert violation.details["lock"] == "memlock"
        assert violation.details["copy_owner"] == "cpu0"
        assert violation.details["simulator_valid"] is True
        assert violation.details["model_valid"] is False
        assert "SC on memlock" in violation.message

    def test_reservation_not_cleared_attributed(self):
        """A remote copy the snoop should have killed survives a store."""
        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        with locks.held(cpus[1], "memlock"):
            pass
        with locks.held(cpus[0], "memlock"):
            pass  # invalidates cpu1's copy
        kernel.llsc._valid_copy["memlock"][1] = True  # stale survivor
        cpus[0].advance_to(max(p.cycles for p in cpus) + 1000)
        with locks.held(cpus[0], "memlock"):
            pass
        found = violations(checks, "llsc", "reservation-not-cleared")
        assert len(found) == 1
        assert found[0].details["copy_owner"] == "cpu1"

    def test_spurious_invalidation_attributed(self):
        """The inverse corruption: a copy vanishes with no remote store."""
        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        with locks.held(cpus[0], "memlock"):
            pass
        kernel.llsc._valid_copy["memlock"][0] = False
        cpus[1].advance_to(cpus[0].cycles + 1000)
        with locks.held(cpus[1], "memlock"):
            pass
        found = violations(checks, "llsc", "spurious-invalidation")
        assert len(found) == 1
        assert found[0].details["copy_owner"] == "cpu0"

    def test_resync_reports_corruption_once(self):
        """After one report the model resyncs; later clean events pass."""
        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        with locks.held(cpus[0], "memlock"):
            pass
        with locks.held(cpus[1], "memlock"):
            pass
        kernel.llsc._valid_copy["memlock"][0] = True
        for cpu in (0, 1, 0, 1):
            cpus[cpu].advance_to(max(p.cycles for p in cpus) + 1000)
            with locks.held(cpus[cpu], "memlock"):
                pass
        assert len(violations(checks, "llsc")) == 1

    def test_uncached_traffic_reconciles(self):
        """uncached accesses == 2*acquires + releases + spins, per family."""
        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        for cpu in (0, 1, 2, 0):
            with locks.held(cpus[cpu], "calock"):
                cpus[cpu].advance(50)
        checks.llsc.finalize(max(p.cycles for p in cpus))
        assert checks.report_data.ok
        # Now corrupt the simulator's count: the reconciliation fires.
        kernel.llsc.per_lock["calock"].uncached_accesses += 1
        checks.llsc.finalize(99999)
        found = violations(checks, "llsc", "traffic-mismatch")
        assert len(found) == 1
        assert found[0].details["family"] == "calock"

    def test_cached_miss_divergence_reported(self):
        kernel, cpus, checks = make_checked_kernel()
        with kernel.locks.held(cpus[0], "memlock"):
            pass
        kernel.llsc.per_lock["memlock"].cached_misses += 2
        checks.llsc.finalize(1000)
        found = violations(checks, "llsc", "cached-miss-divergence")
        assert len(found) == 1
        assert found[0].details["simulator_misses"] == (
            found[0].details["model_misses"] + 2
        )

    def test_syncbus_counters_reconcile(self):
        kernel, cpus, checks = make_checked_kernel()
        with kernel.locks.held(cpus[0], "runqlk"):
            pass
        kernel.syncbus.stats.reads += 1
        checks.llsc.finalize(1000)
        found = violations(checks, "llsc", "syncbus-mismatch")
        assert len(found) == 1
        assert "reads" in found[0].message


# ----------------------------------------------------------------------
# The irq dimension of lockdep
# ----------------------------------------------------------------------
class TestIrqLockdep:
    def test_irq_unsafe_acquire_in_irq_attributed(self):
        """The injected fault: a handler takes memlock (no handler does)."""
        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        with locks.held(cpus[0], "memlock"):
            pass  # record the process-context site first
        checks.lockdep.on_interrupt_entry(1, 500, "DISK")
        with locks.held(cpus[1], "memlock"):
            pass
        checks.lockdep.on_interrupt_exit(1, 600)
        found = violations(checks, "lockdep", "irq-unsafe-acquire-in-irq")
        assert len(found) == 1
        violation = found[0]
        assert violation.cpu == 1
        assert violation.details["family"] == "memlock"
        assert "test_sanitizers.py" in violation.details["irq_site"]
        assert "test_sanitizers.py" in violation.details["process_site"]
        assert "runqlk" in violation.details["irq_safe_families"]

    def test_irq_safe_families_in_irq_are_clean(self):
        """The real handlers' locks: calock + runqlk under the clock."""
        kernel, cpus, checks = make_checked_kernel()
        checks.lockdep.on_interrupt_entry(0, 100, "CLOCK")
        with kernel.locks.held(cpus[0], "calock"):
            with kernel.locks.held(cpus[0], "runqlk"):
                pass
        checks.lockdep.on_interrupt_exit(0, 200)
        assert checks.report_data.ok

    def test_irq_unsafe_family_reported_once(self):
        kernel, cpus, checks = make_checked_kernel()
        checks.lockdep.on_interrupt_entry(0, 100, "DISK")
        for _ in range(3):
            with kernel.locks.held(cpus[0], "memlock"):
                pass
        checks.lockdep.on_interrupt_exit(0, 400)
        assert len(violations(checks, "lockdep",
                              "irq-unsafe-acquire-in-irq")) == 1

    def test_non_irq_family_held_across_interrupt_is_clean(self):
        """No handler takes memlock, so holding it at entry cannot
        self-deadlock — the old blanket nothing-held assert over-fired."""
        kernel, cpus, checks = make_checked_kernel()
        kernel.locks.acquire(cpus[0], kernel.locks.lock("memlock"))
        checks.lockdep.on_interrupt_entry(0, cpus[0].cycles, "CLOCK")
        assert not violations(checks, "lockdep", "held-at-interrupt-entry")

    def test_irq_used_family_held_at_entry_still_fires(self):
        """runqlk is taken by handlers: holding it at entry is the
        classic interrupt self-deadlock."""
        kernel, cpus, checks = make_checked_kernel()
        kernel.locks.acquire(cpus[2], kernel.locks.lock("runqlk"))
        checks.lockdep.on_interrupt_entry(2, cpus[2].cycles, "CLOCK")
        found = violations(checks, "lockdep", "held-at-interrupt-entry")
        assert len(found) == 1
        assert found[0].cpu == 2

    def test_interrupt_exit_restores_process_context(self):
        kernel, cpus, checks = make_checked_kernel()
        checks.lockdep.on_interrupt_entry(0, 100, "CLOCK")
        checks.lockdep.on_interrupt_exit(0, 200)
        with kernel.locks.held(cpus[0], "memlock"):
            pass  # process context again: no irq violation
        assert checks.report_data.ok
        assert checks.lockdep.interrupt_entries == 1

    def test_netserver_interrupt_path_end_to_end(self):
        """The network-arrival handler takes streams_x in IRQ context
        against the servers' process-context stream reads — the hostile
        load the irq dimension was built for — and lockdep stays clean."""
        from repro.sim._session import Simulation

        sim = Simulation("netserver", seed=5, check=True)
        run = sim.run(5.0, warmup_ms=10.0)
        lockdep = sim.checks.lockdep
        assert lockdep.interrupt_entries > 0
        # streams_x was actually acquired from both contexts.
        assert "streams_x" in lockdep.family_irq_site
        assert "streams_x" in lockdep.family_proc_site
        report = run.check_report
        assert report is not None and report.ok, report.to_text()


# ----------------------------------------------------------------------
# Object-level run-queue locking (the distributed-queue variant's bug)
# ----------------------------------------------------------------------
class TestRunQueueObjectCheck:
    def _distributed_kernel(self, num_queues=4):
        from repro.common.params import MachineParams
        from repro.cpu.processor import Processor
        from repro.kernel.kernel import Kernel, KernelTuning
        from repro.kernel.vm import VmTuning
        from repro.memsys.system import MemorySystem

        params = MachineParams(num_cpus=4)
        memsys = MemorySystem(params)
        cpus = [Processor(i, params, memsys) for i in range(4)]
        tuning = KernelTuning(num_run_queues=num_queues,
                              vm=VmTuning(baseline_frames=512))
        kernel = Kernel(params, memsys, cpus, tuning=tuning)
        checks = CheckRegistry(4, kernel.datamap, "test").install(
            kernel, cpus, memsys
        )
        return kernel, cpus, checks

    def test_unlocked_enqueue_reported(self):
        kernel, cpus, checks = make_checked_kernel()
        checks.races.on_queue_op(0, 1000, 0, "enqueue")
        found = violations(checks, "race", "runq-wrong-lock")
        assert len(found) == 1
        assert found[0].details["required"] == "runqlk"
        assert found[0].details["held_locks"] == "(none)"

    def test_locked_enqueue_is_clean(self):
        kernel, cpus, checks = make_checked_kernel()
        with kernel.locks.held(cpus[0], "runqlk"):
            checks.races.on_queue_op(0, 1000, 0, "enqueue")
        assert checks.report_data.ok

    def test_wrong_cluster_lock_reported(self):
        """The injected fault: mutate queue 1 under queue 0's lock."""
        kernel, cpus, checks = self._distributed_kernel()
        with kernel.locks.held_lock(cpus[0], kernel.locks.runq(0)):
            checks.races.on_queue_op(0, 1000, 1, "dequeue")
        found = violations(checks, "race", "runq-wrong-lock")
        assert len(found) == 1
        violation = found[0]
        assert violation.details["required"] == "runqlk_1"
        assert "runqlk_0" in violation.details["held_locks"]

    def test_matching_cluster_lock_is_clean(self):
        kernel, cpus, checks = self._distributed_kernel()
        for queue in range(4):
            with kernel.locks.held_lock(cpus[0], kernel.locks.runq(queue)):
                checks.races.on_queue_op(0, 1000, queue, "enqueue")
        assert checks.report_data.ok
        assert checks.races.queue_ops_checked == 4


# ----------------------------------------------------------------------
# Deep mode: block-sweep attribution
# ----------------------------------------------------------------------
class TestDeepMode:
    def test_block_sweeps_attributed_to_structures(self):
        kernel, cpus = make_kernel()
        checks = CheckRegistry(4, kernel.datamap, "test", deep=True).install(
            kernel, cpus, kernel.memsys
        )
        block_bytes = kernel.memsys.block_bytes
        proc_block = kernel.datamap.proc_entry(0) // block_bytes
        for _ in range(3):
            cpus[0].dread_block(proc_block)
        cpus[0].dwrite_block(proc_block)
        assert checks.races.blocks_checked == 4
        assert checks.races.block_sweeps.get("Process Table", 0) == 4

    def test_shallow_mode_skips_block_probe(self):
        kernel, cpus, checks = make_checked_kernel()
        assert all(p.block_probe is None for p in cpus)
        assert checks.races.blocks_checked == 0

    def test_deep_counter_in_report(self):
        kernel, cpus = make_kernel()
        checks = CheckRegistry(4, kernel.datamap, "test", deep=True).install(
            kernel, cpus, kernel.memsys
        )
        report = checks.report()
        assert "block_sweeps" in report.counters

    def test_env_deep_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "deep")
        sim = Simulation("pmake", seed=3)
        assert sim.checks is not None
        assert sim.checks.deep
        assert all(p.block_probe is not None for p in sim.processors)


# ----------------------------------------------------------------------
# The sginap backoff protocol (Table 8's library spin/yield discipline)
# ----------------------------------------------------------------------
class TestSginapBackoff:
    def _engine(self):
        from tests.test_engine import make_engine

        def driver(_i):
            yield A.Compute(10**9)

        return make_engine(driver)

    def test_twenty_spins_then_sginap(self):
        """Held beyond the library's patience: exactly 20 spins, one
        sginap syscall, and the acquire action is retained for retry."""
        kernel, cpus, engine, procs = self._engine()
        engine.user_locks[7] = UserLock(holder_pid=999)  # never releases
        action = A.UserLockAcquire(7)
        before = cpus[0].cycles
        engine._execute(cpus[0], procs[0], action, before + 10**9)
        assert action.spins_done == LIBRARY_SPINS
        assert engine.app_sync_spins == LIBRARY_SPINS
        assert engine.lock_sginaps == 1
        assert cpus[0].cycles - before >= LIBRARY_SPINS * SPIN_CYCLES
        assert kernel.invocation_ops[HighLevelOp.SGINAP_SYSCALL] == 1

    def test_short_wait_spins_out_without_sginap(self):
        """A hold interval ending within 20 spins is spun out in place."""
        kernel, cpus, engine, procs = self._engine()
        release_at = cpus[0].cycles + 10 * SPIN_CYCLES
        engine.user_locks[7] = UserLock(holder_pid=None,
                                        release_time=release_at)
        action = A.UserLockAcquire(7)
        engine._execute(cpus[0], procs[0], action, cpus[0].cycles + 10**9)
        assert engine.lock_sginaps == 0
        assert 0 < action.spins_done <= LIBRARY_SPINS
        assert engine.user_locks[7].holder_pid == procs[0].pid
        assert engine.user_locks[7].contended_acquires == 1

    def test_uncontended_acquire_never_spins(self):
        kernel, cpus, engine, procs = self._engine()
        action = A.UserLockAcquire(7)
        engine._execute(cpus[0], procs[0], action, cpus[0].cycles + 10**9)
        assert action.spins_done == 0
        assert engine.app_sync_spins == 0
        assert engine.lock_sginaps == 0

    def test_backoff_repeats_per_retry(self):
        kernel, cpus, engine, procs = self._engine()
        engine.user_locks[7] = UserLock(holder_pid=999)
        action = A.UserLockAcquire(7)
        for _ in range(3):
            engine._execute(cpus[0], procs[0], action,
                            cpus[0].cycles + 10**9)
        assert action.spins_done == 3 * LIBRARY_SPINS
        assert engine.lock_sginaps == 3


# ----------------------------------------------------------------------
# Table 12 locality counters under checked, deterministic contention
# ----------------------------------------------------------------------
class TestLocalityUnderChecking:
    def test_seeded_contention_counters_and_clean_lockdep(self):
        """A seeded contention scenario: counters must match a reference
        computation and lockdep must stay silent throughout."""
        import random

        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        rng = random.Random(1992)
        names = ["memlock", "runqlk", "ifree", "calock"]
        expected_local = {name: 0 for name in names}
        last_cpu = {}
        for _ in range(200):
            cpu = rng.randrange(4)
            name = rng.choice(names)
            if last_cpu.get(name) == cpu:
                expected_local[name] += 1
            last_cpu[name] = cpu
            with locks.held(cpus[cpu], name):
                cpus[cpu].advance(rng.randrange(50, 500))
        for name in names:
            stats = locks.lock(name).stats
            assert stats.same_cpu_no_intervening == expected_local[name]
            if stats.acquires:
                assert stats.locality_pct == pytest.approx(
                    100.0 * expected_local[name] / stats.acquires
                )
        assert checks.lockdep.acquires_checked == 200
        checks.lockdep.finalize(max(p.cycles for p in cpus))
        assert checks.report_data.ok

    def test_nested_contention_stays_ordered(self):
        """Consistent memlock -> ifree nesting across CPUs: contended,
        but never inverted — lockdep passes."""
        kernel, cpus, checks = make_checked_kernel()
        locks = kernel.locks
        for round_index in range(20):
            cpu = round_index % 4
            with locks.held(cpus[cpu], "memlock"):
                with locks.held(cpus[cpu], "ifree"):
                    cpus[cpu].advance(200)
        assert locks.lock("memlock").stats.acquires == 20
        assert checks.report_data.ok


# ----------------------------------------------------------------------
# Full simulated runs
# ----------------------------------------------------------------------
class TestCheckedRuns:
    @pytest.mark.parametrize("workload", ["pmake", "multpgm", "oracle"])
    def test_short_run_is_clean(self, workload):
        run = run_traced_workload(
            workload=workload, horizon_ms=3.0, warmup_ms=20.0, seed=5,
            check=True,
        )
        report = run.check_report
        assert report is not None
        assert report.ok, report.to_text()
        # The checkers actually saw traffic.
        assert report.counters["lock_acquires"] > 0
        assert report.counters["structure_accesses"] > 0
        assert report.counters["bus_writes"] > 0

    def test_disabled_by_default(self):
        sim = Simulation("pmake", seed=3)
        assert sim.checks is None
        assert sim.kernel.checks is None
        assert sim.kernel.locks.checks is None
        assert sim.memsys.checker is None
        assert all(p.access_probe is None for p in sim.processors)

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        sim = Simulation("pmake", seed=3)
        assert sim.checks is not None

    def test_unchecked_run_has_no_report(self):
        run = run_traced_workload(
            workload="pmake", horizon_ms=1.0, warmup_ms=5.0, seed=5
        )
        assert run.check_report is None

    def test_checked_run_pickles_with_report(self):
        run = run_traced_workload(
            workload="pmake", horizon_ms=1.0, warmup_ms=5.0, seed=5,
            check=True,
        )
        clone = pickle.loads(pickle.dumps(run))
        report = clone.check_report
        assert report is not None and report.ok
        assert report.counters == run.check_report.counters

    def test_summary_names_workload(self):
        run = run_traced_workload(
            workload="pmake", horizon_ms=1.0, warmup_ms=5.0, seed=5,
            check=True,
        )
        assert "pmake" in run.check_report.summary()
        assert "clean" in run.check_report.summary()


# ----------------------------------------------------------------------
# Trace-vs-checker cross-validation (AnalysisReport.crosscheck)
# ----------------------------------------------------------------------
class TestCrosscheck:
    """The monitor and the coherence checker count the same bus
    transactions from opposite ends of the machine; on a clean run the
    two accountings must agree *exactly*."""

    @pytest.mark.parametrize("workload", ["pmake", "multpgm", "oracle"])
    def test_monitor_matches_checker_exactly(self, workload):
        from repro.analysis.report import analyze_trace

        run = run_traced_workload(
            workload=workload, horizon_ms=3.0, warmup_ms=20.0, seed=5,
            check=True,
        )
        report = analyze_trace(run)
        assert report.check_counters == run.check_report.counters
        comparison = report.crosscheck()
        assert comparison is not None
        for name, (seen, checked, matched) in comparison.items():
            assert seen > 0, name
            assert matched, (name, seen, checked)
        assert report.crosscheck_ok()

    def test_write_transactions_subset_of_writes(self):
        run = run_traced_workload(
            workload="pmake", horizon_ms=2.0, warmup_ms=10.0, seed=5,
            check=True,
        )
        counters = run.check_report.counters
        assert 0 < counters["bus_write_transactions"] <= counters["bus_writes"]

    def test_unchecked_run_has_no_crosscheck(self):
        from repro.analysis.report import analyze_trace

        run = run_traced_workload(
            workload="pmake", horizon_ms=1.0, warmup_ms=5.0, seed=5
        )
        report = analyze_trace(run)
        assert report.check_counters is None
        assert report.crosscheck() is None
        assert report.crosscheck_lines() == []
        assert report.crosscheck_ok()  # vacuously true

    def test_crosscheck_lines_flag_mismatch(self):
        from repro.analysis.report import analyze_trace

        run = run_traced_workload(
            workload="pmake", horizon_ms=1.0, warmup_ms=5.0, seed=5,
            check=True,
        )
        report = analyze_trace(run)
        assert all("[ok]" in line for line in report.crosscheck_lines())
        # Corrupt one checker counter: the comparison must turn red.
        report.check_counters["bus_reads"] += 1
        assert not report.crosscheck_ok()
        assert any("MISMATCH" in line for line in report.crosscheck_lines())
