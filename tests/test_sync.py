"""Synchronization bus and the LL/SC cached-lock what-if."""

import pytest

from repro.sync.llsc import CachedLockSimulator
from repro.sync.syncbus import SyncBus


class TestSyncBus:
    def test_read_charges_op_cycles(self):
        bus = SyncBus(op_cycles=25)
        assert bus.read(0) == 25

    def test_write_charges_op_cycles(self):
        bus = SyncBus(op_cycles=25)
        assert bus.write(1) == 25

    def test_stats_accumulate_per_cpu(self):
        bus = SyncBus()
        bus.read(0)
        bus.read(0)
        bus.write(1)
        assert bus.stats.reads == 2
        assert bus.stats.writes == 1
        assert bus.stats.stall_cycles_by_cpu[0] == 50
        assert bus.stats.total_stall_cycles() == 75

    def test_rejects_nonpositive_cost(self):
        with pytest.raises(ValueError):
            SyncBus(op_cycles=0)


class TestCachedLockSimulator:
    def test_repeat_acquire_by_same_cpu_is_cached(self):
        sim = CachedLockSimulator()
        for _ in range(5):
            sim.on_acquire("l", 0)
            sim.on_release("l", 0)
        counts = sim.per_lock["l"]
        assert counts.cached_misses == 1
        assert counts.uncached_accesses == 15

    def test_migrating_lock_misses_every_move(self):
        sim = CachedLockSimulator()
        for cpu in (0, 1, 0, 1):
            sim.on_acquire("l", cpu)
            sim.on_release("l", cpu)
        # Each CPU change invalidates the other's copy.
        assert sim.per_lock["l"].cached_misses == 4

    def test_spin_costs_uncached_reads_but_one_cached_miss(self):
        sim = CachedLockSimulator()
        sim.on_acquire("l", 0)
        sim.on_spin("l", 1, 20)
        counts = sim.per_lock["l"]
        assert counts.uncached_accesses == 2 + 20
        assert counts.cached_misses == 2  # one per CPU's first touch

    def test_zero_iteration_spin_free(self):
        sim = CachedLockSimulator()
        sim.on_spin("l", 0, 0)
        assert "l" not in sim.per_lock

    def test_stall_cycles(self):
        sim = CachedLockSimulator(bus_stall_cycles=35, sync_op_cycles=25)
        sim.on_acquire("l", 0)
        sim.on_release("l", 0)
        assert sim.uncached_stall_cycles() == 3 * 25
        assert sim.cached_stall_cycles() == 35

    def test_ratio_pct(self):
        sim = CachedLockSimulator()
        for _ in range(10):
            sim.on_acquire("l", 0)
            sim.on_release("l", 0)
        assert sim.per_lock["l"].cached_to_uncached_pct == pytest.approx(
            100.0 / 30.0
        )
