"""Code-layout optimizer."""

import pytest

from repro.kernel.layout import KernelLayout
from repro.memsys.memory import KTEXT_BASE, KTEXT_SIZE
from repro.opt.codelayout import (
    conflict_cost,
    optimize_layout,
)


@pytest.fixture(scope="module")
def default_layout():
    return KernelLayout()


def engineered_heat(layout) -> dict:
    """Heat concentrated on the engineered conflict pairs."""
    return {
        "fs_read": 1000.0,
        "disk_driver_hot": 900.0,
        "syscall_entry": 800.0,
        "tty_driver_hot": 700.0,
        "runq_switch": 600.0,
        "clock_intr": 500.0,
        "excvec_entry": 400.0,
        "fs_write": 300.0,
    }


class TestConflictCost:
    def test_default_layout_has_conflicts(self, default_layout):
        heat = engineered_heat(default_layout)
        assert conflict_cost(default_layout, heat) > 0

    def test_zero_heat_zero_cost(self, default_layout):
        assert conflict_cost(default_layout, {}) == 0.0

    def test_cost_scales_with_heat(self, default_layout):
        heat = engineered_heat(default_layout)
        doubled = {name: 2 * value for name, value in heat.items()}
        assert conflict_cost(default_layout, doubled) == pytest.approx(
            2 * conflict_cost(default_layout, heat)
        )


class TestOptimize:
    def test_cost_reduced(self, default_layout):
        heat = engineered_heat(default_layout)
        plan = optimize_layout(default_layout, heat)
        assert plan.predicted_cost_after < plan.predicted_cost_before

    def test_hot_routines_deconflicted(self, default_layout):
        heat = engineered_heat(default_layout)
        plan = optimize_layout(default_layout, heat)
        optimized = plan.build()
        # Hot routines fit comfortably in 64 KB: the optimizer must
        # eliminate all pairwise conflicts among them.
        hot = [optimized.routine(name) for name in heat]
        for i, a in enumerate(hot):
            for b in hot[i + 1:]:
                assert not a.conflicts_with(b), (a.name, b.name)

    def test_all_routines_preserved(self, default_layout):
        plan = optimize_layout(default_layout, engineered_heat(default_layout))
        optimized = plan.build()
        assert set(optimized.routines) == set(default_layout.routines)
        for name, routine in default_layout.routines.items():
            assert optimized.routine(name).size == routine.size

    def test_no_overlaps_in_plan(self, default_layout):
        plan = optimize_layout(default_layout, engineered_heat(default_layout))
        optimized = plan.build()
        spans = sorted(
            (r.base, r.end, r.name) for r in optimized.routines.values()
        )
        for a, b in zip(spans, spans[1:]):
            assert a[1] <= b[0], (a[2], b[2])

    def test_fits_in_text(self, default_layout):
        plan = optimize_layout(default_layout, engineered_heat(default_layout))
        optimized = plan.build()
        assert optimized.text_end <= KTEXT_BASE + KTEXT_SIZE

    def test_summary_mentions_hot_count(self, default_layout):
        plan = optimize_layout(default_layout, engineered_heat(default_layout))
        assert "hot routines" in plan.summary()

    def test_empty_heat_still_valid(self, default_layout):
        plan = optimize_layout(default_layout, {})
        assert set(plan.build().routines) == set(default_layout.routines)

    def test_custom_spec_roundtrip(self, default_layout):
        plan = optimize_layout(default_layout, engineered_heat(default_layout))
        rebuilt = KernelLayout(spec=plan.spec)
        first = plan.build()
        assert {
            name: routine.base for name, routine in rebuilt.routines.items()
        } == {name: routine.base for name, routine in first.routines.items()}
