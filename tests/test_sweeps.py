"""Cache sweep (Figure 6 machinery) properties."""

import pytest

from repro.analysis.report import analyze_trace
from repro.analysis.sweeps import (
    FLUSH_CPU,
    simulate_icache_config,
    simulate_icache_sweep,
)


@pytest.fixture(scope="module")
def stream(pmake_run):
    report = analyze_trace(pmake_run)
    return report.analysis.imiss_stream


class TestBaseConfig:
    def test_base_replay_reproduces_every_miss(self, stream):
        """Replaying the 64KB-DM miss stream through a 64KB-DM cache must
        miss on every entry — the stream IS that cache's miss stream."""
        point = simulate_icache_config(stream, 4, 64 * 1024, 1)
        windowed = [e for e in stream if e[0] != FLUSH_CPU and e[3]]
        assert point.total_misses == len(windowed)


class TestMonotonicity:
    def test_bigger_caches_never_miss_more(self, stream):
        points = {
            (p.size_bytes, p.associativity): p
            for p in simulate_icache_sweep(stream, 4)
        }
        sizes = sorted({size for size, _a in points})
        for small, big in zip(sizes, sizes[1:]):
            assert points[(big, 1)].os_misses <= points[(small, 1)].os_misses

    def test_two_way_not_worse_than_direct(self, stream):
        points = {
            (p.size_bytes, p.associativity): p
            for p in simulate_icache_sweep(stream, 4)
        }
        for size in (128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024):
            assert points[(size, 2)].os_misses <= points[(size, 1)].os_misses * 1.02

    def test_inval_floor_bounded_by_misses(self, stream):
        for point in simulate_icache_sweep(stream, 4):
            assert 0 <= point.os_inval_misses <= point.os_misses

    def test_two_way_base_size_skipped(self, stream):
        points = simulate_icache_sweep(stream, 4)
        assert not any(
            p.size_bytes == 64 * 1024 and p.associativity == 2 for p in points
        )


class TestFlushHandling:
    def test_flush_markers_force_remisses(self):
        # Synthetic stream: fill, flush, refetch -> the refetch must miss
        # and be counted as an inval miss.
        stream = [
            (0, 100, True, True),
            (FLUSH_CPU, 0, False, False),
            (0, 100, True, True),
        ]
        point = simulate_icache_config(stream, 1, 1024 * 1024, 1)
        assert point.os_misses == 2
        assert point.os_inval_misses == 1

    def test_no_flush_big_cache_absorbs_repeats(self):
        stream = [(0, 100, True, True), (0, 100, True, True)]
        point = simulate_icache_config(stream, 1, 1024 * 1024, 1)
        assert point.os_misses == 1

    def test_warmup_entries_fill_but_do_not_count(self):
        stream = [(0, 100, True, False), (0, 100, True, True)]
        point = simulate_icache_config(stream, 1, 1024 * 1024, 1)
        assert point.os_misses == 0  # second access hits the warm line
