"""GroundTruth classification bookkeeping."""

from repro.common.types import MissClass, RefDomain
from repro.memsys.tracking import DATA, INSTR, GroundTruth

OS = RefDomain.OS
APP = RefDomain.APP


def make_truth(record_events=False):
    return GroundTruth(2, record_events=record_events)


class TestClassify:
    def test_first_miss_is_cold(self):
        truth = make_truth()
        cls, same = truth.classify_and_record(0, 0, DATA, 10, OS, 0)
        assert cls is MissClass.COLD and not same

    def test_eviction_then_miss_is_displacement(self):
        truth = make_truth()
        truth.classify_and_record(0, 0, DATA, 10, OS, 0)
        truth.record_eviction(0, DATA, 10, APP, 0)
        cls, _ = truth.classify_and_record(1, 0, DATA, 10, OS, 0)
        assert cls is MissClass.DISPAP

    def test_os_eviction_same_epoch_is_dispossame(self):
        truth = make_truth()
        truth.classify_and_record(0, 0, DATA, 10, OS, 3)
        truth.record_eviction(0, DATA, 10, OS, 3)
        cls, same = truth.classify_and_record(1, 0, DATA, 10, OS, 3)
        assert cls is MissClass.DISPOS and same

    def test_os_eviction_new_epoch_not_dispossame(self):
        truth = make_truth()
        truth.classify_and_record(0, 0, DATA, 10, OS, 3)
        truth.record_eviction(0, DATA, 10, OS, 3)
        cls, same = truth.classify_and_record(1, 0, DATA, 10, OS, 4)
        assert cls is MissClass.DISPOS and not same

    def test_invalidation_beats_eviction(self):
        truth = make_truth()
        truth.classify_and_record(0, 0, DATA, 10, OS, 0)
        truth.record_invalidation(0, DATA, 10)
        cls, _ = truth.classify_and_record(1, 0, DATA, 10, OS, 0)
        assert cls is MissClass.SHARING

    def test_instruction_invalidation_is_inval(self):
        truth = make_truth()
        truth.classify_and_record(0, 0, INSTR, 10, OS, 0)
        truth.record_invalidation(0, INSTR, 10)
        cls, _ = truth.classify_and_record(1, 0, INSTR, 10, OS, 0)
        assert cls is MissClass.INVAL

    def test_fill_clears_invalidation(self):
        truth = make_truth()
        truth.classify_and_record(0, 0, DATA, 10, OS, 0)
        truth.record_invalidation(0, DATA, 10)
        truth.classify_and_record(1, 0, DATA, 10, OS, 0)  # SHARING + refill
        truth.record_eviction(0, DATA, 10, OS, 0)
        cls, _ = truth.classify_and_record(2, 0, DATA, 10, OS, 0)
        assert cls is MissClass.DISPOS

    def test_cpus_independent(self):
        truth = make_truth()
        truth.classify_and_record(0, 0, DATA, 10, OS, 0)
        cls, _ = truth.classify_and_record(1, 1, DATA, 10, OS, 0)
        assert cls is MissClass.COLD


class TestCounters:
    def test_counts_aggregate(self):
        truth = make_truth()
        truth.classify_and_record(0, 0, DATA, 1, OS, 0)
        truth.classify_and_record(1, 0, INSTR, 2, APP, 0)
        assert truth.total_misses() == 2
        assert truth.total_misses(OS) == 1

    def test_uncached_recorded(self):
        truth = make_truth()
        truth.record_uncached(OS)
        assert truth.class_counts(OS)[MissClass.UNCACHED] == 1

    def test_events_recorded_when_enabled(self):
        truth = make_truth(record_events=True)
        truth.classify_and_record(7, 1, DATA, 5, APP, 2)
        assert len(truth.events) == 1
        event = truth.events[0]
        assert event.cpu == 1 and event.block == 5 and event.domain is APP

    def test_events_skipped_when_disabled(self):
        truth = make_truth()
        truth.classify_and_record(0, 0, DATA, 1, OS, 0)
        assert truth.events == []
