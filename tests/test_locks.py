"""Kernel spinlocks: statistics, contention, locality."""

import pytest

from repro.common.params import MachineParams
from repro.cpu.processor import Processor
from repro.kernel.locks import LOCK_FUNCTIONS, LockTable
from repro.memsys.system import MemorySystem
from repro.sync.syncbus import SyncBus


@pytest.fixture
def setup(params):
    memsys = MemorySystem(params)
    cpus = [Processor(i, params, memsys) for i in range(4)]
    locks = LockTable(SyncBus())
    return cpus, locks


class TestInventory:
    def test_table11_locks_exist(self, setup):
        _, locks = setup
        for name in ("memlock", "runqlk", "ifree", "dfbmaplk", "bfreelock",
                     "calock", "semlock"):
            assert locks.lock(name).name == name

    def test_lock_arrays(self, setup):
        _, locks = setup
        assert locks.shr(5).family == "shr_x"
        assert locks.ino(3).family == "ino_x"
        assert locks.streams(1).family == "streams_x"

    def test_array_wraps(self, setup):
        _, locks = setup
        assert locks.shr(0) is locks.shr(128)

    def test_paper_functions_documented(self):
        assert "run queue" in LOCK_FUNCTIONS["runqlk"].lower()
        assert len(LOCK_FUNCTIONS) == 10


class TestAcquireRelease:
    def test_uncontended_acquire(self, setup):
        cpus, locks = setup
        lock = locks.lock("memlock")
        locks.acquire(cpus[0], lock)
        locks.release(cpus[0], lock)
        assert lock.stats.acquires == 1
        assert lock.stats.failed_acquires == 0

    def test_release_by_wrong_cpu_rejected(self, setup):
        cpus, locks = setup
        lock = locks.lock("memlock")
        locks.acquire(cpus[0], lock)
        with pytest.raises(RuntimeError):
            locks.release(cpus[1], lock)

    def test_context_manager(self, setup):
        cpus, locks = setup
        with locks.held(cpus[0], "runqlk") as lock:
            assert lock.holder_cpu == 0
        assert lock.holder_cpu is None

    def test_acquire_charges_syncbus(self, setup):
        cpus, locks = setup
        before = cpus[0].cycles
        with locks.held(cpus[0], "memlock"):
            pass
        # read + write on acquire, write on release: 3 x 25 cycles.
        assert cpus[0].cycles - before == 75

    def test_hold_time_recorded(self, setup):
        cpus, locks = setup
        lock = locks.lock("memlock")
        locks.acquire(cpus[0], lock)
        cpus[0].advance(500)
        locks.release(cpus[0], lock)
        assert lock.stats.hold_cycles_sum >= 500


class TestContention:
    def test_overlapping_interval_counts_failed(self, setup):
        cpus, locks = setup
        lock = locks.lock("runqlk")
        locks.acquire(cpus[0], lock)
        cpus[0].advance(10_000)
        locks.release(cpus[0], lock)
        # CPU1's local clock is still 0: its attempt falls inside the
        # recorded hold interval -> contended.
        locks.acquire(cpus[1], lock)
        locks.release(cpus[1], lock)
        assert lock.stats.failed_acquires == 1
        assert lock.stats.releases_with_waiters == 1
        assert lock.stats.mean_waiters_if_any == 1.0

    def test_waiter_spins_until_release(self, setup):
        cpus, locks = setup
        lock = locks.lock("runqlk")
        locks.acquire(cpus[0], lock)
        cpus[0].advance(10_000)
        locks.release(cpus[0], lock)
        locks.acquire(cpus[1], lock)
        assert cpus[1].cycles >= 10_000  # spun out the hold interval
        locks.release(cpus[1], lock)

    def test_late_attempt_not_contended(self, setup):
        cpus, locks = setup
        lock = locks.lock("runqlk")
        locks.acquire(cpus[0], lock)
        locks.release(cpus[0], lock)
        cpus[1].advance(50_000)
        locks.acquire(cpus[1], lock)
        assert lock.stats.failed_acquires == 0

    def test_failed_pct(self, setup):
        cpus, locks = setup
        lock = locks.lock("runqlk")
        locks.acquire(cpus[0], lock)
        cpus[0].advance(10_000)
        locks.release(cpus[0], lock)
        locks.acquire(cpus[1], lock)
        locks.release(cpus[1], lock)
        assert lock.stats.failed_pct == pytest.approx(50.0)


class TestLocality:
    def test_same_cpu_reacquire_counts(self, setup):
        cpus, locks = setup
        lock = locks.lock("ifree")
        for _ in range(3):
            with locks.held_lock(cpus[0], lock):
                pass
        # First acquire has no predecessor; the next two are local.
        assert lock.stats.same_cpu_no_intervening == 2
        assert lock.stats.locality_pct == pytest.approx(200.0 / 3)

    def test_intervening_cpu_breaks_locality(self, setup):
        cpus, locks = setup
        lock = locks.lock("ifree")
        with locks.held_lock(cpus[0], lock):
            pass
        cpus[1].advance(1_000_000)
        with locks.held_lock(cpus[1], lock):
            pass
        cpus[0].advance(2_000_000)
        with locks.held_lock(cpus[0], lock):
            pass
        assert lock.stats.same_cpu_no_intervening == 0

    def test_llsc_traffic_tracked(self, setup):
        cpus, locks = setup
        lock = locks.lock("ifree")
        for _ in range(10):
            with locks.held_lock(cpus[0], lock):
                pass
        counts = locks.llsc.per_lock["ifree"]
        # Uncached machine: 3 ops per acquire/release cycle.
        assert counts.uncached_accesses == 30
        # Cached machine: one miss to fetch the line, then all local.
        assert counts.cached_misses == 1
        assert counts.cached_to_uncached_pct < 10.0


class TestFamilyStats:
    def test_families_aggregate(self, setup):
        cpus, locks = setup
        with locks.held_lock(cpus[0], locks.shr(1)):
            pass
        with locks.held_lock(cpus[0], locks.shr(2)):
            pass
        stats = locks.family_stats()
        assert stats["shr_x"].acquires == 2

    def test_total_acquires(self, setup):
        cpus, locks = setup
        with locks.held(cpus[0], "memlock"):
            pass
        with locks.held(cpus[0], "calock"):
            pass
        assert locks.total_acquires() == 2

    def test_cycles_between_acquires(self, setup):
        cpus, locks = setup
        lock = locks.lock("memlock")
        for _ in range(4):
            with locks.held_lock(cpus[0], lock):
                pass
        assert lock.stats.cycles_between_acquires(40_000) == pytest.approx(10_000)
