"""ASCII chart rendering."""

from repro.analysis.charts import bar_chart, profile_chart, series_chart


class TestBarChart:
    def test_renders_rows(self):
        text = bar_chart([("alpha", 10.0), ("beta", 5.0)], title="T", unit="%")
        assert "T" in text
        assert "alpha" in text and "beta" in text
        assert "10.0%" in text

    def test_longest_bar_is_max(self):
        text = bar_chart([("a", 10.0), ("b", 5.0)], width=20)
        bar_a = text.splitlines()[0].split("|")[1]
        bar_b = text.splitlines()[1].split("|")[1]
        assert bar_a.count("█") > bar_b.count("█")

    def test_empty(self):
        assert "(no data)" in bar_chart([], title="empty")

    def test_zero_values_safe(self):
        text = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "a" in text


class TestSeriesChart:
    def test_renders_all_series(self):
        text = series_chart(
            [1, 2, 4], {"runqlk": [0.1, 0.2, 0.4], "memlock": [0.0, 0.1, 0.2]}
        )
        assert "runqlk" in text and "memlock" in text
        assert text.count("|") == 6  # one bar row per point

    def test_empty(self):
        assert "(no data)" in series_chart([], {})


class TestProfileChart:
    def test_marks_regions(self):
        buckets = [(0, 5), (64, 10), (70, 2)]
        text = profile_chart(buckets, bucket_bytes=1024,
                             region_bytes=64 * 1024, title="P")
        assert "P" in text
        assert "|" in text  # region ruler
        assert "64 KB" in text

    def test_peak_column_tallest(self):
        buckets = [(0, 1), (1, 10)]
        text = profile_chart(buckets, 1024, 64 * 1024, height=5)
        rows = [line for line in text.splitlines() if "█" in line]
        # The peak bucket appears in every bar row; the small one in few.
        col0 = sum(1 for row in rows if len(row) > 2 and row[2] == "█")
        col1 = sum(1 for row in rows if len(row) > 3 and row[3] == "█")
        assert col1 > col0

    def test_empty(self):
        assert "(no data)" in profile_chart([], 1024, 65536)


class TestChartHooks:
    def test_figure_modules_expose_charts(self):
        from repro.experiments import figure2, figure5, figure6, figure8, figure11

        for module in (figure2, figure5, figure6, figure8, figure11):
            assert callable(getattr(module, "chart"))

    def test_render_chart_none_for_tables(self):
        from repro.api import ExperimentContext
        from repro.experiments.registry import render_chart

        assert render_chart("table3", ExperimentContext()) is None
