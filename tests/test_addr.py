"""Address arithmetic helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.common.addr import (
    align_down,
    align_up,
    block_base,
    block_of,
    blocks_in_range,
    page_base,
    page_of,
)


class TestBlockMath:
    def test_block_of_zero(self):
        assert block_of(0) == 0

    def test_block_of_boundary(self):
        assert block_of(16) == 1
        assert block_of(15) == 0

    def test_block_base_roundtrip(self):
        assert block_base(block_of(0x12345)) == 0x12340

    def test_page_of(self):
        assert page_of(4096) == 1
        assert page_of(4095) == 0

    def test_page_base(self):
        assert page_base(3) == 12288


class TestBlocksInRange:
    def test_empty_range(self):
        assert list(blocks_in_range(100, 0)) == []

    def test_negative_size(self):
        assert list(blocks_in_range(100, -5)) == []

    def test_single_block(self):
        assert list(blocks_in_range(0, 1)) == [0]

    def test_straddling_range(self):
        # [15, 18) overlaps blocks 0 and 1.
        assert list(blocks_in_range(15, 3)) == [0, 1]

    def test_exact_blocks(self):
        assert list(blocks_in_range(32, 32)) == [2, 3]

    @given(st.integers(0, 1 << 24), st.integers(1, 4096))
    def test_covers_all_bytes(self, base, size):
        blocks = list(blocks_in_range(base, size))
        assert blocks[0] == base // 16
        assert blocks[-1] == (base + size - 1) // 16
        # Contiguous.
        assert blocks == list(range(blocks[0], blocks[-1] + 1))


class TestAlign:
    def test_align_down(self):
        assert align_down(0x1234, 0x100) == 0x1200

    def test_align_up(self):
        assert align_up(0x1234, 0x100) == 0x1300

    def test_align_up_already_aligned(self):
        assert align_up(0x1200, 0x100) == 0x1200

    @given(st.integers(0, 1 << 30), st.sampled_from([16, 64, 4096]))
    def test_align_invariants(self, addr, gran):
        down, up = align_down(addr, gran), align_up(addr, gran)
        assert down % gran == 0 and up % gran == 0
        assert down <= addr <= up
        assert up - down in (0, gran)
