"""Fidelity tiers: checkpoints, cache keys, seam state, error bounds.

Checkpoint round-trip tests assert byte-identity: a run restored from
an :class:`EngineCheckpoint` and continued must record exactly the
trace an uninterrupted run records, at every cut point — including the
awkward ones (an open lock hold interval another CPU would spin
against, pending timer interrupts).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import analyze_trace
from repro.api import Simulation, UnsupportedFidelityError
from repro.fidelity import (
    FIDELITY_LEVELS,
    resolve_fast_forward,
    resolve_fidelity,
    validate_fidelity,
)
from repro.fidelity.checkpoint import checkpoint_key
from repro.fidelity.validate import _MemoryStore, compare_runs
from repro.sim.runcache import RunCache, load_or_run

# Tiny windows: these tests exercise the tier plumbing, not statistics.
HORIZON, WARMUP, SEED = 4.0, 10.0, 11


def _trace(run) -> list:
    return list(run.trace.all_entries())


def _detailed_run(**kwargs):
    sim = Simulation("pmake", seed=SEED, **kwargs)
    return sim, sim.run(HORIZON, warmup_ms=WARMUP)


class TestCheckpointRoundTrip:
    @pytest.fixture(scope="class")
    def reference(self):
        """An uninterrupted detailed run (driver log on, as the
        checkpointing runs have it, so the machines are identical)."""
        _, run = _detailed_run(record_drivers=True)
        return _trace(run)

    def _roundtrip(self, reference, *, checkpoint_at=None, checkpoint_when=None):
        sim = Simulation("pmake", seed=SEED, record_drivers=True)
        sim.checkpoint_at = checkpoint_at
        sim.checkpoint_when = checkpoint_when
        interrupted = sim.run(HORIZON, warmup_ms=WARMUP)
        # Capturing must not perturb the capturing run itself.
        assert _trace(interrupted) == reference
        checkpoint = sim.captured_checkpoint
        assert checkpoint is not None, "cut-point predicate never fired"
        resumed = checkpoint.restore().continue_run()
        assert _trace(resumed) == reference
        return checkpoint

    def test_cut_during_warmup(self, reference):
        params = Simulation("pmake", seed=SEED).params
        cut = params.ms_to_cycles(WARMUP) // 2
        self._roundtrip(reference, checkpoint_at=cut)

    def test_cut_inside_measured_window(self, reference):
        params = Simulation("pmake", seed=SEED).params
        cut = params.ms_to_cycles(WARMUP + HORIZON / 2)
        self._roundtrip(reference, checkpoint_at=cut)

    def test_cut_mid_lock_spin(self, reference):
        """Cut while a lock hold interval is open against a slower CPU —
        the state a contending acquire would spin on."""

        def mid_spin(sim):
            low_water = min(p.cycles for p in sim.processors)
            return any(
                lock.holder_cpu is not None or lock.release_cycles > low_water
                for lock in sim.kernel.locks._locks.values()
            )

        self._roundtrip(reference, checkpoint_when=mid_spin)

    def test_cut_with_pending_interrupt(self):
        """Cut while timer interrupts are queued for delivery (oracle's
        client think times keep the kernel timer queue populated)."""

        def pending_timer(sim):
            return bool(sim.kernel._timers)

        ref_sim = Simulation("oracle", seed=SEED, record_drivers=True)
        reference = _trace(ref_sim.run(HORIZON, warmup_ms=WARMUP))
        sim = Simulation("oracle", seed=SEED, record_drivers=True)
        sim.checkpoint_when = pending_timer
        interrupted = sim.run(HORIZON, warmup_ms=WARMUP)
        assert _trace(interrupted) == reference
        checkpoint = sim.captured_checkpoint
        assert checkpoint is not None, "timer queue never populated"
        resumed = checkpoint.restore().continue_run()
        assert _trace(resumed) == reference


class TestMixedSeamCheckpoint:
    def test_seam_checkpoint_reuse_is_byte_identical(self, tmp_path):
        """Warm mixed runs (checkpoint restore + window only) equal cold
        mixed runs, via the real run-cache path twice in a row."""
        cache = RunCache(cache_dir=tmp_path / "cache")
        cold, _ = load_or_run(
            cache, "pmake", HORIZON, WARMUP, SEED,
            sim_kwargs={"fidelity": "mixed"},
        )
        # Drop the run entry but keep the checkpoint, so the second call
        # must rebuild the run from the restored seam state.
        run_key = cache.run_key(
            "pmake", HORIZON, WARMUP, SEED, {"fidelity": "mixed"}
        )
        cache._path(run_key).unlink()
        warm_cache = RunCache(cache_dir=tmp_path / "cache")
        warm, _ = load_or_run(
            warm_cache, "pmake", HORIZON, WARMUP, SEED,
            sim_kwargs={"fidelity": "mixed"},
        )
        assert _trace(warm) == _trace(cold)
        assert warm.seam_cycles == cold.seam_cycles
        assert warm.fast_forwarded_refs == cold.fast_forwarded_refs

    def test_in_memory_seam_checkpoint(self):
        store = _MemoryStore()
        sim = Simulation("pmake", seed=SEED, fidelity="mixed")
        sim.checkpoint_cache = store
        sim.checkpoint_cache_key = "in-memory"
        cold = sim.run(HORIZON, warmup_ms=WARMUP)
        assert store.payload is not None
        warm = store.payload["checkpoint"].restore().continue_run(HORIZON)
        assert _trace(warm) == _trace(cold)


class TestCacheKeys:
    def test_fidelity_in_run_key(self, tmp_path):
        cache = RunCache(cache_dir=tmp_path / "cache")
        base = cache.run_key("pmake", HORIZON, WARMUP, SEED)
        atomic = cache.run_key(
            "pmake", HORIZON, WARMUP, SEED, {"fidelity": "atomic"}
        )
        mixed = cache.run_key(
            "pmake", HORIZON, WARMUP, SEED, {"fidelity": "mixed"}
        )
        fast = cache.run_key(
            "pmake", HORIZON, WARMUP, SEED,
            {"fidelity": "mixed", "fast_forward": 100_000},
        )
        assert len({base, atomic, mixed, fast}) == 4

    def test_detailed_normalizes_to_legacy_key(self, tmp_path):
        """fidelity='detailed' / fast_forward=0 are the defaults: they
        normalize out of the key, so pre-fidelity entries stay valid."""
        cache = RunCache(cache_dir=tmp_path / "cache")
        load_or_run(cache, "pmake", HORIZON, WARMUP, SEED)
        run, _ = load_or_run(
            cache, "pmake", HORIZON, WARMUP, SEED,
            sim_kwargs={"fidelity": "detailed", "fast_forward": 0},
        )
        assert cache.hits == 1 and cache.misses == 1
        assert run.fidelity == "detailed"

    def test_tiers_never_cross_reuse(self, tmp_path):
        """A detailed entry must not satisfy a mixed request or vice
        versa — the tier changes the run's bytes."""
        cache = RunCache(cache_dir=tmp_path / "cache")
        detailed, _ = load_or_run(cache, "pmake", HORIZON, WARMUP, SEED)
        mixed, _ = load_or_run(
            cache, "pmake", HORIZON, WARMUP, SEED,
            sim_kwargs={"fidelity": "mixed"},
        )
        # No hits: neither request was satisfied by the other's entry
        # (the mixed path also probes its checkpoint key, so miss counts
        # are not 1:1 with requests).
        assert cache.hits == 0
        assert detailed.fidelity == "detailed"
        assert mixed.fidelity == "mixed"
        # And back: the mixed store does not shadow the detailed entry.
        again, _ = load_or_run(cache, "pmake", HORIZON, WARMUP, SEED)
        assert cache.hits == 1
        assert again.fidelity == "detailed"

    def test_checkpoint_key_dimensions(self, tmp_path):
        cache = RunCache(cache_dir=tmp_path / "cache")
        base = checkpoint_key(cache, "pmake", WARMUP, SEED, 0, {})
        assert base.startswith("ckpt-")
        assert base != checkpoint_key(cache, "multpgm", WARMUP, SEED, 0, {})
        assert base != checkpoint_key(cache, "pmake", WARMUP + 1, SEED, 0, {})
        assert base != checkpoint_key(cache, "pmake", WARMUP, SEED + 1, 0, {})
        assert base != checkpoint_key(cache, "pmake", WARMUP, SEED, 5000, {})
        # fidelity/fast_forward are schedule, not machine, parameters:
        # they do not change the checkpointed warm state's key.
        assert base == checkpoint_key(
            cache, "pmake", WARMUP, SEED, 0,
            {"fidelity": "mixed", "fast_forward": 0},
        )


class TestGuards:
    def test_check_plus_atomic_raises(self):
        with pytest.raises(UnsupportedFidelityError):
            Simulation("pmake", seed=SEED, fidelity="atomic", check=True)

    def test_mixed_with_check_is_allowed(self):
        Simulation("pmake", seed=SEED, fidelity="mixed", check=True)

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError):
            Simulation("pmake", seed=SEED, fidelity="cycle-accurate")
        with pytest.raises(ValueError):
            validate_fidelity("bogus")

    def test_negative_fast_forward_rejected(self):
        with pytest.raises(ValueError):
            Simulation("pmake", seed=SEED, fidelity="mixed", fast_forward=-1)

    def test_cli_refuses_check_with_atomic(self, capsys):
        from repro.experiments.cli import main

        rc = main(["run", "table1", "--fidelity", "atomic", "--check",
                   "--no-cache"])
        assert rc == 2
        assert "check" in capsys.readouterr().err

    def test_cli_refuses_atomic_exhibits(self, capsys):
        """Atomic runs carry no trace, so exhibit tables built from
        them would be all-zero; the CLI refuses and points at mixed."""
        from repro.experiments.cli import main

        rc = main(["run", "table1", "--fidelity", "atomic", "--no-cache"])
        assert rc == 2
        assert "mixed" in capsys.readouterr().err


class TestEnvResolution:
    def test_fidelity_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FIDELITY", raising=False)
        assert resolve_fidelity(None) == "detailed"
        monkeypatch.setenv("REPRO_FIDELITY", "mixed")
        assert resolve_fidelity(None) == "mixed"
        # An explicit argument wins over the environment.
        assert resolve_fidelity("atomic") == "atomic"
        monkeypatch.setenv("REPRO_FIDELITY", "bogus")
        with pytest.raises(ValueError):
            resolve_fidelity(None)

    def test_fast_forward_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST_FORWARD", raising=False)
        assert resolve_fast_forward(None) == 0
        monkeypatch.setenv("REPRO_FAST_FORWARD", "250000")
        assert resolve_fast_forward(None) == 250000
        assert resolve_fast_forward(9) == 9
        monkeypatch.setenv("REPRO_FAST_FORWARD", "-3")
        with pytest.raises(ValueError):
            resolve_fast_forward(None)

    def test_levels_frozen(self):
        assert set(FIDELITY_LEVELS) == {"detailed", "atomic", "mixed"}


class TestTierRuns:
    @pytest.fixture(scope="class")
    def mixed_run(self):
        return Simulation("pmake", seed=SEED, fidelity="mixed").run(
            HORIZON, warmup_ms=WARMUP
        )

    def test_default_detailed_is_byte_identical(self):
        """fidelity='detailed' must be a no-op spelling of the default."""
        _, plain = _detailed_run()
        _, explicit = _detailed_run(fidelity="detailed")
        assert _trace(explicit) == _trace(plain)

    def test_atomic_runs_to_completion(self):
        run = Simulation("pmake", seed=SEED, fidelity="atomic").run(
            HORIZON, warmup_ms=WARMUP
        )
        assert run.fidelity == "atomic"
        assert run.fast_forwarded_refs > 0

    def test_mixed_provenance(self, mixed_run):
        assert mixed_run.fidelity == "mixed"
        assert mixed_run.fast_forwarded_refs > 0
        assert mixed_run.seam_cycles is not None
        warmup_cycles = mixed_run.measure_from_cycles
        assert 0 < mixed_run.seam_cycles <= warmup_cycles

    def test_fast_forward_budget_pulls_seam_earlier(self):
        # Small enough to trip before the warmup-seam deadline.
        budget = 5_000
        run = Simulation(
            "pmake", seed=SEED, fidelity="mixed", fast_forward=budget
        ).run(HORIZON, warmup_ms=WARMUP)
        deadline_run = Simulation("pmake", seed=SEED, fidelity="mixed").run(
            HORIZON, warmup_ms=WARMUP
        )
        assert run.seam_cycles < deadline_run.seam_cycles

    def test_seam_state_shape(self, mixed_run):
        state = mixed_run.seam_state
        assert state is not None
        assert len(state) == mixed_run.params.num_cpus
        for entry in state:
            assert entry["app_epoch"] >= 0
            for key in ("icache", "dcache"):
                dump = entry[key]
                assert set(dump) == {
                    "resident", "ever_cached", "evicted_by", "invalidated"
                }
                assert set(dump["resident"]) <= dump["ever_cached"]

    def test_detailed_runs_have_no_seam_state(self):
        _, run = _detailed_run()
        assert run.seam_state is None
        assert run.seam_cycles is None

    def test_mixed_serial_and_sharded_analysis_agree(self, mixed_run):
        """seed_seam must flow through both analysis paths."""
        serial = analyze_trace(mixed_run, keep_imiss_stream=False)
        sharded = analyze_trace(mixed_run, shards=2, keep_imiss_stream=False)
        assert serial.os_miss_fraction_pct == sharded.os_miss_fraction_pct
        for kind in ("I", "D"):
            from repro.common.types import MissClass

            for miss_class in MissClass:
                assert serial.os_class_share_pct(kind, miss_class) == \
                    sharded.os_class_share_pct(kind, miss_class)

    def test_seam_seeding_deflates_cold_class(self, mixed_run):
        """Post-seam misses on blocks the atomic warmup cached classify
        as COLD without the seam-state seed; with it they take the
        simulator's recorded history."""
        import dataclasses

        from repro.common.types import MissClass

        seeded = analyze_trace(mixed_run, keep_imiss_stream=False)
        unseeded = analyze_trace(
            dataclasses.replace(mixed_run, seam_state=None),
            keep_imiss_stream=False,
        )
        for kind in ("I", "D"):
            assert seeded.os_class_share_pct(kind, MissClass.COLD) <= \
                unseeded.os_class_share_pct(kind, MissClass.COLD)
        assert seeded.os_class_share_pct("I", MissClass.COLD) < \
            unseeded.os_class_share_pct("I", MissClass.COLD)


class TestCompareRuns:
    def test_self_comparison_is_exact(self, pmake_run):
        report = analyze_trace(pmake_run, keep_imiss_stream=False)
        checks = compare_runs(pmake_run, pmake_run, report, report)
        assert checks, "no statistics compared"
        assert all(check.ok for check in checks)
        assert all(check.error == 0 for check in checks)

    def test_out_of_bound_detected(self, pmake_run):
        report = analyze_trace(pmake_run, keep_imiss_stream=False)
        checks = compare_runs(
            pmake_run, pmake_run, report, report,
            share_bound_pp=-1.0,  # impossible bound: everything fails
        )
        shares = [check for check in checks if check.kind == "share_pp"]
        assert shares and all(not check.ok for check in shares)
