"""repro.service: metrics rendering, job lifecycle, HTTP routing and
the socket transport.

Most tests run against stub runners on a thread pool so the suite is
fast; two end-to-end tests do a real (1 ms horizon) exhibit build to
pin the byte-identity contract between the service and ``repro.api``.
Everything async is driven through ``asyncio.run`` — no plugin needed.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import RunCache, RunSettings
from repro.experiments._base import Exhibit
from repro.service import JobManager, MetricsRegistry, QueueFull, ServiceApp, ServiceConfig
from repro.service.jobs import CANCELLED, DONE, FAILED, TERMINAL_STATES, TIMEOUT
from repro.service.server import ExhibitServer

_SHORT = RunSettings(horizon_ms=1.0, warmup_ms=5.0, seed=5)


# ----------------------------------------------------------------------
# Stub runners (executed on a ThreadPoolExecutor in tests)
# ----------------------------------------------------------------------
def _stub_runner(exhibit_id, settings, cache_spec):
    exhibit = Exhibit(exhibit_id, f"Stub {exhibit_id}", ("col",))
    exhibit.add_row("row", 1)
    return exhibit.to_dict()


def _failing_runner(exhibit_id, settings, cache_spec):
    raise ValueError("boom")


class _BlockingRunner:
    """Runner that parks worker threads until the test releases them."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()

    def __call__(self, exhibit_id, settings, cache_spec):
        self.started.set()
        if not self.release.wait(timeout=30):
            raise TimeoutError("test never released the runner")
        return _stub_runner(exhibit_id, settings, cache_spec)


def _sleepy_runner(exhibit_id, settings, cache_spec):
    time.sleep(1.0)
    return _stub_runner(exhibit_id, settings, cache_spec)


def _manager(runner=_stub_runner, **kwargs):
    kwargs.setdefault("max_workers", 1)
    kwargs.setdefault("queue_depth", 4)
    return JobManager(
        _SHORT,
        runner=runner,
        executor=ThreadPoolExecutor(max_workers=kwargs["max_workers"]),
        **kwargs,
    )


async def _wait_terminal(jobs, job_id, timeout_s=10.0):
    deadline = asyncio.get_event_loop().time() + timeout_s
    while True:
        job = jobs.get(job_id)
        if job is not None and job.state in TERMINAL_STATES:
            return job
        if asyncio.get_event_loop().time() > deadline:
            raise AssertionError(f"job {job_id} never finished: {job}")
        await asyncio.sleep(0.01)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_renders_and_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_things_total", "Things.")
        assert "repro_things_total 0" in registry.render()  # exists at zero
        counter.inc()
        counter.inc(2)
        text = registry.render()
        assert "# HELP repro_things_total Things." in text
        assert "# TYPE repro_things_total counter" in text
        assert "repro_things_total 3" in text

    def test_labelled_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_req_total", "Reqs.", ("route", "status"))
        counter.inc(route="/healthz", status="200")
        counter.inc(route="/healthz", status="200")
        counter.inc(route="/metrics", status="200")
        assert counter.value(route="/healthz", status="200") == 2
        assert counter.total() == 3
        text = registry.render()
        assert 'repro_req_total{route="/healthz",status="200"} 2' in text
        with pytest.raises(ValueError):
            counter.inc(route="/healthz")  # missing label

    def test_gauge_callback_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_depth", "Depth.", callback=lambda: 7)
        gauge.set(3)
        assert "repro_depth 7" in registry.render()

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_lat", "Latency.", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(99.0)
        text = registry.render()
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="1"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_count 3" in text

    def test_duplicate_name_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x", "X.")
        with pytest.raises(ValueError, match="duplicate"):
            registry.gauge("repro_x", "X again.")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_esc", "Esc.", ("path",))
        counter.inc(path='a"b\n')
        assert r'path="a\"b\n"' in registry.render()


# ----------------------------------------------------------------------
# Job manager
# ----------------------------------------------------------------------
class TestJobManager:
    def test_submit_runs_to_done(self):
        async def scenario():
            jobs = _manager()
            await jobs.start()
            try:
                job, created = jobs.submit("table1")
                assert created
                finished = await _wait_terminal(jobs, job.job_id)
                assert finished.state == DONE
                assert finished.result["exhibit_id"] == "table1"
                assert jobs.result_for_exhibit("table1") == finished.result
                payload = finished.to_dict()
                assert payload["location"] == "/exhibits/table1"
            finally:
                await jobs.close()
        asyncio.run(scenario())

    def test_duplicate_submissions_coalesce(self):
        async def scenario():
            runner = _BlockingRunner()
            jobs = _manager(runner=runner)
            await jobs.start()
            try:
                first, created = jobs.submit("table1")
                again, created2 = jobs.submit("table1")
                assert created and not created2
                assert again is first
                runner.release.set()
                await _wait_terminal(jobs, first.job_id)
            finally:
                await jobs.close()
        asyncio.run(scenario())

    def test_bounded_queue_rejects_when_full(self):
        async def scenario():
            runner = _BlockingRunner()
            jobs = _manager(runner=runner, max_workers=1, queue_depth=1)
            await jobs.start()
            try:
                running, _ = jobs.submit("table1")
                assert await asyncio.get_event_loop().run_in_executor(
                    None, runner.started.wait, 5
                )
                queued, _ = jobs.submit("table2")
                with pytest.raises(QueueFull):
                    jobs.submit("table3")
                runner.release.set()
                await _wait_terminal(jobs, running.job_id)
                await _wait_terminal(jobs, queued.job_id)
            finally:
                await jobs.close()
        asyncio.run(scenario())

    def test_failure_recorded_and_worker_survives(self):
        async def scenario():
            jobs = _manager(runner=_failing_runner)
            await jobs.start()
            try:
                job, _ = jobs.submit("table1")
                finished = await _wait_terminal(jobs, job.job_id)
                assert finished.state == FAILED
                assert "ValueError: boom" in finished.error
                assert "error" in finished.to_dict()
                # The worker is still alive: a second submission for the
                # same exhibit makes a NEW job (the failed one is
                # terminal) and also completes.
                job2, created = jobs.submit("table1")
                assert created and job2.job_id != job.job_id
                await _wait_terminal(jobs, job2.job_id)
            finally:
                await jobs.close()
        asyncio.run(scenario())

    def test_timeout_marks_job(self):
        async def scenario():
            jobs = _manager(runner=_sleepy_runner, job_timeout_s=0.1)
            await jobs.start()
            try:
                job, _ = jobs.submit("table1")
                finished = await _wait_terminal(jobs, job.job_id)
                assert finished.state == TIMEOUT
                assert "0.1" in finished.error
            finally:
                await jobs.close(drain=False)
        asyncio.run(scenario())

    def test_cancel_queued_job_never_runs(self):
        async def scenario():
            runner = _BlockingRunner()
            jobs = _manager(runner=runner, max_workers=1, queue_depth=2)
            await jobs.start()
            try:
                running, _ = jobs.submit("table1")
                assert await asyncio.get_event_loop().run_in_executor(
                    None, runner.started.wait, 5
                )
                queued, _ = jobs.submit("table2")
                cancelled = jobs.cancel(queued.job_id)
                assert cancelled.state == CANCELLED
                runner.release.set()
                await _wait_terminal(jobs, running.job_id)
                # Let the worker drain the queue: the cancelled job must
                # stay cancelled (the worker skips it).
                await jobs._queue.join()
                assert jobs.get(queued.job_id).state == CANCELLED
            finally:
                await jobs.close()
        asyncio.run(scenario())

    def test_cancel_running_job_keeps_worker(self):
        async def scenario():
            runner = _BlockingRunner()
            jobs = _manager(runner=runner)
            await jobs.start()
            try:
                job, _ = jobs.submit("table1")
                assert await asyncio.get_event_loop().run_in_executor(
                    None, runner.started.wait, 5
                )
                jobs.cancel(job.job_id)
                finished = await _wait_terminal(jobs, job.job_id)
                assert finished.state == CANCELLED
                runner.release.set()
                # Worker survives: the next job still completes.
                runner.started.clear()
                job2, _ = jobs.submit("table1")
                assert (await _wait_terminal(jobs, job2.job_id)).state == DONE
            finally:
                await jobs.close()
        asyncio.run(scenario())

    def test_cancel_unknown_job(self):
        async def scenario():
            jobs = _manager()
            await jobs.start()
            try:
                assert jobs.cancel("job-nope") is None
            finally:
                await jobs.close()
        asyncio.run(scenario())

    def test_close_drains_queued_work(self):
        async def scenario():
            jobs = _manager()
            await jobs.start()
            job, _ = jobs.submit("table1")
            await jobs.close(drain=True)
            assert jobs.get(job.job_id).state == DONE
            with pytest.raises(RuntimeError):
                jobs.submit("table2")
        asyncio.run(scenario())


# ----------------------------------------------------------------------
# HTTP app (transport-free)
# ----------------------------------------------------------------------
def _app(tmp_path, runner=_stub_runner, **config_kwargs):
    config_kwargs.setdefault("max_workers", 1)
    config_kwargs.setdefault("queue_depth", 4)
    config = ServiceConfig(
        settings=_SHORT,
        cache_dir=str(tmp_path / "cache"),
        **config_kwargs,
    )
    jobs = JobManager(
        config.settings,
        max_workers=config.max_workers,
        queue_depth=config.queue_depth,
        job_timeout_s=config.job_timeout_s,
        runner=runner,
        executor=ThreadPoolExecutor(max_workers=config.max_workers),
    )
    return ServiceApp(config, jobs=jobs)


@pytest.fixture(autouse=True)
def _cache_env(monkeypatch):
    """Service tests pin their own cache dirs; the ambient env must not
    silently disable or relocate them."""
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)


class TestServiceApp:
    def test_healthz(self, tmp_path):
        app = _app(tmp_path)
        reply = app.handle("GET", "/healthz")
        assert reply.status == 200
        payload = reply.json()
        assert payload["status"] == "ok"
        assert payload["workers"] == 1
        assert payload["queue_capacity"] == 4

    def test_exhibit_listing(self, tmp_path):
        reply = _app(tmp_path).handle("GET", "/exhibits")
        assert reply.status == 200
        listing = reply.json()["exhibits"]
        ids = [meta["id"] for meta in listing]
        assert "table1" in ids
        assert all("title" in meta and "kind" in meta for meta in listing)

    def test_unknown_exhibit_404_lists_choices(self, tmp_path):
        reply = _app(tmp_path).handle("GET", "/exhibits/nope")
        assert reply.status == 404
        assert "table1" in reply.json()["choices"]

    def test_unknown_route_and_method(self, tmp_path):
        app = _app(tmp_path)
        assert app.handle("GET", "/teapot").status == 404
        assert app.handle("POST", "/healthz").status == 405
        assert app.handle("PUT", "/exhibits/table1").status == 405

    def test_bad_format_rejected(self, tmp_path):
        reply = _app(tmp_path).handle("GET", "/exhibits/table1", "format=xml")
        assert reply.status == 400

    def test_bad_fidelity_rejected(self, tmp_path):
        app = _app(tmp_path)
        reply = app.handle("GET", "/exhibits/table1", "fidelity=turbo")
        assert reply.status == 400
        assert "mixed" in reply.json()["choices"]
        # Atomic runs carry no trace — exhibits built from one would be
        # all-zero, so the tier is rejected at the HTTP boundary too.
        reply = app.handle("GET", "/exhibits/table1", "fidelity=atomic")
        assert reply.status == 400
        assert reply.json()["choices"] == ["detailed", "mixed"]
        reply = app.handle(
            "GET", "/exhibits/table1", "fidelity=mixed&fast_forward=nope"
        )
        assert reply.status == 400

    def test_cold_then_poll_then_warm(self, tmp_path):
        async def scenario():
            app = _app(tmp_path)
            await app.start()
            try:
                reply = app.handle("GET", "/exhibits/table1")
                assert reply.status == 202
                payload = reply.json()
                assert payload["state"] == "queued"
                assert reply.headers["Location"] == payload["poll"]
                job_id = payload["job"]
                await _wait_terminal(app.jobs, job_id)
                polled = app.handle("GET", f"/jobs/{job_id}")
                assert polled.status == 200
                assert polled.json()["state"] == "done"
                assert polled.json()["result"]["exhibit_id"] == "table1"
                warm = app.handle("GET", "/exhibits/table1")
                assert warm.status == 200
                assert warm.json()["title"] == "Stub table1"
                text = app.handle("GET", "/exhibits/table1", "format=text")
                assert text.status == 200
                assert "Stub table1" in text.body.decode()
            finally:
                await app.close()
        asyncio.run(scenario())

    def test_queue_full_503_with_retry_after(self, tmp_path):
        async def scenario():
            runner = _BlockingRunner()
            app = _app(tmp_path, runner=runner, max_workers=1,
                       queue_depth=1, retry_after_s=9)
            await app.start()
            try:
                app.handle("GET", "/exhibits/table1")
                assert await asyncio.get_event_loop().run_in_executor(
                    None, runner.started.wait, 5
                )
                app.handle("GET", "/exhibits/table2")
                rejected = app.handle("GET", "/exhibits/table3")
                assert rejected.status == 503
                assert rejected.headers["Retry-After"] == "9"
                assert rejected.json()["retry_after_s"] == 9
                runner.release.set()
            finally:
                await app.close()
        asyncio.run(scenario())

    def test_duplicate_cold_requests_share_job(self, tmp_path):
        async def scenario():
            runner = _BlockingRunner()
            app = _app(tmp_path, runner=runner)
            await app.start()
            try:
                first = app.handle("GET", "/exhibits/table1").json()
                second = app.handle("GET", "/exhibits/table1").json()
                assert first["job"] == second["job"]
                runner.release.set()
            finally:
                await app.close()
        asyncio.run(scenario())

    def test_cancel_job_via_delete(self, tmp_path):
        async def scenario():
            runner = _BlockingRunner()
            app = _app(tmp_path, runner=runner)
            await app.start()
            try:
                job_id = app.handle("GET", "/exhibits/table1").json()["job"]
                cancelled = app.handle("DELETE", f"/jobs/{job_id}")
                assert cancelled.status == 200
                assert cancelled.json()["state"] == "cancelled"
                runner.release.set()
                assert app.handle("DELETE", "/jobs/nope").status == 404
                assert app.handle("GET", "/jobs/nope").status == 404
            finally:
                await app.close()
        asyncio.run(scenario())

    def test_warm_from_disk_cache_without_jobs(self, tmp_path):
        """An exhibit built by an earlier process (here: repro.api) is
        served immediately from the shared disk cache — no job."""
        from repro import api

        cache = RunCache(cache_dir=tmp_path / "cache")
        built = api.exhibit(
            "table11", cache=cache, horizon_ms=1.0, warmup_ms=5.0, seed=5
        )
        app = _app(tmp_path)  # same cache_dir; jobs never started
        reply = app.handle("GET", "/exhibits/table11")
        assert reply.status == 200
        assert reply.body.decode() == built.to_json() + "\n"
        assert app.metrics.exhibit_warm_hits.value() == 1

    def test_metrics_counters_move(self, tmp_path):
        async def scenario():
            app = _app(tmp_path)
            await app.start()
            try:
                app.handle("GET", "/healthz")
                job_id = app.handle("GET", "/exhibits/table1").json()["job"]
                await _wait_terminal(app.jobs, job_id)
                app.handle("GET", "/exhibits/table1")
                reply = app.handle("GET", "/metrics")
                assert reply.status == 200
                assert reply.content_type.startswith("text/plain")
                return reply.body.decode()
            finally:
                await app.close()
        text = asyncio.run(scenario())
        samples = {}
        for line in text.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            name, _, value = line.rpartition(" ")
            samples[name] = float(value)
        assert samples['repro_http_requests_total{route="/healthz",status="200"}'] == 1
        assert samples['repro_http_requests_total{route="/exhibits/{id}",status="202"}'] == 1
        assert samples['repro_http_requests_total{route="/exhibits/{id}",status="200"}'] == 1
        assert samples["repro_exhibit_cold_misses_total"] == 1
        assert samples["repro_exhibit_warm_hits_total"] == 1
        assert samples['repro_jobs_total{outcome="queued"}'] == 1
        assert samples['repro_jobs_total{outcome="done"}'] == 1
        assert samples["repro_jobs_queue_depth"] == 0
        assert samples["repro_jobs_queue_capacity"] == 4
        assert samples["repro_workers"] == 1
        assert samples["repro_runcache_probes_total"] >= 1
        # /metrics renders before its own request is observed, so the
        # three earlier requests are what the histogram has seen.
        assert samples["repro_http_request_seconds_count"] == 3
        assert samples['repro_http_request_seconds_bucket{le="+Inf"}'] == 3

    def test_cold_build_byte_identical_to_api(self, tmp_path):
        """The acceptance contract: a service-built exhibit's JSON body
        is byte-identical to repro.api.exhibit() at the same settings."""
        from repro import api

        async def scenario():
            config = ServiceConfig(
                settings=_SHORT, cache_dir=str(tmp_path / "cache"),
                max_workers=1, queue_depth=4,
            )
            jobs = JobManager(  # real build_exhibit_payload, on threads
                config.settings,
                cache_spec=(str(tmp_path / "cache"), True),
                max_workers=1,
                queue_depth=4,
                executor=ThreadPoolExecutor(max_workers=1),
            )
            app = ServiceApp(config, jobs=jobs)
            await app.start()
            try:
                job_id = app.handle("GET", "/exhibits/table11").json()["job"]
                finished = await _wait_terminal(app.jobs, job_id, timeout_s=120)
                assert finished.state == DONE, finished.error
                return app.handle("GET", "/exhibits/table11").body
            finally:
                await app.close()

        body = asyncio.run(scenario())
        expected = api.exhibit(
            "table11", cache=False, horizon_ms=1.0, warmup_ms=5.0, seed=5
        )
        assert body.decode() == expected.to_json() + "\n"


# ----------------------------------------------------------------------
# Socket transport
# ----------------------------------------------------------------------
async def _http(port, target, method="GET"):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"{method} {target} HTTP/1.1\r\nHost: t\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


class TestExhibitServer:
    def test_end_to_end_over_socket(self, tmp_path):
        async def scenario():
            app = _app(tmp_path)
            server = ExhibitServer(app, port=0)
            await server.start()
            serve_task = asyncio.ensure_future(server.serve_forever())
            try:
                status, headers, body = await _http(server.port, "/healthz")
                assert status == 200
                assert headers["connection"] == "close"
                assert json.loads(body)["status"] == "ok"
                assert headers["content-length"] == str(len(body))

                status, headers, body = await _http(
                    server.port, "/exhibits/table1"
                )
                assert status == 202
                poll = json.loads(body)["poll"]
                assert headers["location"] == poll

                for _ in range(500):
                    status, _headers, body = await _http(server.port, poll)
                    if json.loads(body)["state"] in TERMINAL_STATES:
                        break
                    await asyncio.sleep(0.01)
                assert json.loads(body)["state"] == "done"

                status, headers, body = await _http(
                    server.port, "/exhibits/table1"
                )
                assert status == 200
                assert headers["content-type"] == "application/json"
                assert json.loads(body)["title"] == "Stub table1"

                status, _headers, body = await _http(server.port, "/metrics")
                assert status == 200
                assert b"repro_http_requests_total" in body
            finally:
                server.stop()
                await asyncio.wait_for(serve_task, 30)
        asyncio.run(scenario())

    def test_malformed_request_line(self, tmp_path):
        async def scenario():
            app = _app(tmp_path)
            server = ExhibitServer(app, port=0)
            await server.start()
            serve_task = asyncio.ensure_future(server.serve_forever())
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"NONSENSE\r\n\r\n")
                await writer.drain()
                raw = await reader.read(-1)
                assert raw.startswith(b"HTTP/1.1 400 ")
                writer.close()
            finally:
                server.stop()
                await asyncio.wait_for(serve_task, 30)
        asyncio.run(scenario())

    def test_handler_exception_becomes_500(self, tmp_path):
        async def scenario():
            app = _app(tmp_path)

            def explode(method, path, query=""):
                raise RuntimeError("handler bug")

            app.handle = explode
            server = ExhibitServer(app, port=0)
            await server.start()
            serve_task = asyncio.ensure_future(server.serve_forever())
            try:
                status, _headers, body = await _http(server.port, "/healthz")
                assert status == 500
                assert b"internal error" in body
            finally:
                server.stop()
                await asyncio.wait_for(serve_task, 30)
        asyncio.run(scenario())


# ----------------------------------------------------------------------
# CLI entrypoint plumbing
# ----------------------------------------------------------------------
class TestMainConfig:
    def test_build_config_defaults_and_env(self, monkeypatch, tmp_path):
        from repro.service.__main__ import build_parser, build_config

        monkeypatch.setenv("REPRO_BENCH_HORIZON_MS", "2.5")
        monkeypatch.setenv("REPRO_BENCH_WARMUP_MS", "7.5")
        parser = build_parser()
        args = parser.parse_args([
            "--queue-depth", "3", "--jobs", "2",
            "--cache-dir", str(tmp_path / "c"),
        ])
        config = build_config(args)
        assert config.settings.horizon_ms == 2.5
        assert config.settings.warmup_ms == 7.5
        assert config.queue_depth == 3
        assert config.max_workers == 2
        assert config.cache_dir == str(tmp_path / "c")

    def test_explicit_flags_beat_env(self, monkeypatch):
        from repro.service.__main__ import build_parser, build_config

        monkeypatch.setenv("REPRO_BENCH_HORIZON_MS", "2.5")
        args = build_parser().parse_args(["--horizon-ms", "4.0"])
        config = build_config(args)
        assert config.settings.horizon_ms == 4.0


# ----------------------------------------------------------------------
# Sharded-analysis metrics plumbing
# ----------------------------------------------------------------------
def _shard_stats_sample():
    return {
        "shards": [
            {"shard": 0, "entries": 600, "seconds": 0.5, "refs_per_sec": 1200.0},
            {"shard": 1, "entries": 400, "seconds": 0.5, "refs_per_sec": 800.0},
        ],
        "scout_seconds": 0.2,
        "wall_seconds": 1.0,
        "total_entries": 1000,
        "total_refs_per_sec": 1000.0,
        "seams_ok": 1,
    }


class TestShardMetrics:
    def test_labeled_gauge_renders_and_clears(self):
        registry = MetricsRegistry()
        gauge = registry.labeled_gauge("repro_rate", "Rate.", ("shard",))
        assert "repro_rate" not in registry.render()  # no zero-sample default
        gauge.set(1234, shard="0")
        gauge.set(99.5, shard="1")
        text = registry.render()
        assert "# TYPE repro_rate gauge" in text
        assert 'repro_rate{shard="0"} 1234' in text
        assert 'repro_rate{shard="1"} 99.5' in text
        assert gauge.value(shard="1") == 99.5
        with pytest.raises(ValueError):
            gauge.set(1.0)  # missing label
        gauge.clear()
        assert "repro_rate{" not in registry.render()

    def _service_metrics(self):
        from repro.service.app import ServiceMetrics

        registry = MetricsRegistry()
        manager = _manager()
        metrics = ServiceMetrics(registry, manager)
        manager.metrics = metrics
        return metrics, registry, manager

    def test_record_shard_stats_populates_gauges(self):
        metrics, registry, _ = self._service_metrics()
        metrics.record_shard_stats(_shard_stats_sample())
        text = registry.render()
        assert "repro_analysis_shards 2" in text
        assert 'repro_analysis_shard_refs_per_sec{shard="0"} 1200' in text
        assert 'repro_analysis_shard_refs_per_sec{shard="1"} 800' in text
        assert "repro_analysis_total_refs_per_sec 1000" in text

    def test_record_shard_stats_replaces_stale_series(self):
        metrics, registry, _ = self._service_metrics()
        metrics.record_shard_stats(_shard_stats_sample())
        metrics.record_shard_stats({
            "shards": [
                {"shard": 0, "entries": 10, "seconds": 1.0, "refs_per_sec": 10.0}
            ],
            "total_refs_per_sec": 10.0,
        })
        text = registry.render()
        assert "repro_analysis_shards 1" in text
        assert 'repro_analysis_shard_refs_per_sec{shard="0"} 10' in text
        assert 'shard="1"' not in text  # stale per-shard series cleared

    def test_runner_tuple_result_feeds_metrics_and_unwraps(self):
        """The default runner returns (payload, shard_stats): the job
        result must be the bare payload, the stats must reach /metrics."""
        def runner(exhibit_id, settings, cache_spec):
            return _stub_runner(exhibit_id, settings, cache_spec), \
                _shard_stats_sample()

        async def scenario():
            metrics, registry, jobs = self._service_metrics()
            jobs.runner = runner
            await jobs.start()
            try:
                job, _ = jobs.submit("table1")
                finished = await _wait_terminal(jobs, job.job_id)
                assert finished.state == DONE
                assert finished.result["exhibit_id"] == "table1"  # unwrapped
                assert "repro_analysis_shards 2" in registry.render()
            finally:
                await jobs.close()
        asyncio.run(scenario())

    def test_plain_dict_runner_results_pass_through(self):
        """Injected runners returning bare payload dicts (and serial
        builds reporting no shard stats) skip the metrics hook."""
        async def scenario():
            metrics, registry, jobs = self._service_metrics()
            await jobs.start()
            try:
                job, _ = jobs.submit("table1")
                finished = await _wait_terminal(jobs, job.job_id)
                assert finished.state == DONE
                assert finished.result["exhibit_id"] == "table1"
                assert "repro_analysis_shards 0" in registry.render()
            finally:
                await jobs.close()
        asyncio.run(scenario())
