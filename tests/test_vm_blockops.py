"""VM subsystem and block operations."""

import pytest

from repro.common.types import Mode
from repro.kernel.vm import USE_DATA, USE_TEXT
from tests.test_kernel_core import make_kernel
from repro.kernel.process import ProcState


@pytest.fixture
def kernel_and_cpus():
    return make_kernel()


class TestVmAllocation:
    def test_alloc_tracks_use(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        frame = kernel.vm.alloc_frame(cpus[0], USE_DATA, (1, 0x100))
        assert kernel.vm.frame_use[frame] == (USE_DATA, (1, 0x100))

    def test_alloc_takes_memlock(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        before = kernel.locks.lock("memlock").stats.acquires
        kernel.vm.alloc_frame(cpus[0], USE_DATA, (1, 0x100))
        assert kernel.locks.lock("memlock").stats.acquires == before + 1

    def test_free_untracked_rejected(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        with pytest.raises(ValueError):
            kernel.vm.free_frame(cpus[0], 99999)

    def test_text_frame_reuse_flushes_icaches(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        proc = cpus[0]
        frame = kernel.vm.alloc_frame(proc, USE_TEXT, "img")
        # Execute from the frame so I-caches hold its blocks.
        proc.set_mode(Mode.USER)
        proc.ifetch_block(frame * 256)
        kernel.vm.free_frame(proc, frame)
        flushes_before = kernel.vm.stats_icache_flushes
        # FIFO allocator: drain until that frame comes around again.
        for _ in range(kernel.memsys.memory.free_frame_count()):
            got = kernel.vm.alloc_frame(proc, USE_DATA, None)
            if got == frame:
                break
        assert kernel.vm.stats_icache_flushes == flushes_before + 1
        # The refetch is now an Inval miss.
        assert not kernel.memsys.hierarchies[0].instr_resident(frame * 256)

    def test_data_frame_reuse_does_not_flush(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        frame = kernel.vm.alloc_frame(cpus[0], USE_DATA, None)
        kernel.vm.free_frame(cpus[0], frame)
        flushes = kernel.vm.stats_icache_flushes
        for _ in range(kernel.memsys.memory.free_frame_count()):
            if kernel.vm.alloc_frame(cpus[0], USE_DATA, None) == frame:
                break
        assert kernel.vm.stats_icache_flushes == flushes

    def test_contained_code_override(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        frame = kernel.vm.alloc_frame(cpus[0], USE_TEXT, "img")
        kernel.vm.free_frame(cpus[0], frame, contained_code=False)
        assert frame not in kernel.vm.frame_was_text


class TestReclaim:
    def test_low_water_triggers_reclaim(self):
        kernel, cpus = make_kernel(baseline_frames=0)
        phys = kernel.memsys.memory
        low_water = kernel.vm.tuning.low_water_frames
        # Fill a buffer-cache frame to make something reclaimable, then
        # drain the pool to the low-water mark.
        kernel.fs.buffer_cache.getblk(cpus[0], 1, 0).valid = True
        while phys.free_frame_count() > low_water:
            kernel.vm.alloc_frame(cpus[0], USE_DATA, None)
        reclaims_before = kernel.vm.stats_reclaims
        kernel.vm.alloc_frame(cpus[0], USE_DATA, None)
        assert kernel.vm.stats_reclaims == reclaims_before + 1

    def test_reclaim_runs_pfdat_traversal(self):
        kernel, cpus = make_kernel(baseline_frames=0)
        kernel.vm.alloc_frame(cpus[0], USE_DATA, None)  # give it a candidate
        traversals = kernel.blockops.traversals
        kernel.vm.reclaim(cpus[0])
        assert kernel.blockops.traversals == traversals + 1

    def test_reclaim_with_nothing_tracked_is_noop(self):
        kernel, cpus = make_kernel(baseline_frames=0)
        assert kernel.vm.reclaim(cpus[0]) == 0


class TestBlockOps:
    def test_bcopy_reads_and_writes(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        proc = cpus[0]
        proc.set_mode(Mode.KERNEL)
        reads = kernel.memsys.bus_reads
        writes = kernel.memsys.bus_writes
        kernel.blockops.bcopy(proc, 0x500000, 0x600000, 4096)
        assert kernel.memsys.bus_reads - reads >= 256      # source misses
        assert kernel.memsys.bus_writes - writes >= 256    # dest fills
        assert kernel.blockops.bytes_copied == 4096

    def test_bclear_writes_only(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        proc = cpus[0]
        proc.set_mode(Mode.KERNEL)
        kernel.blockops.bclear(proc, 0x500000, 4096)
        assert kernel.blockops.clears == 1
        assert kernel.blockops.bytes_cleared == 4096

    def test_zero_sizes_noop(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        kernel.blockops.bcopy(cpus[0], 0, 0x1000, 0)
        kernel.blockops.bclear(cpus[0], 0x1000, 0)
        assert kernel.blockops.copies == 0
        assert kernel.blockops.clears == 0

    def test_traverse_touches_pfdat(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        proc = cpus[0]
        proc.set_mode(Mode.KERNEL)
        misses_before = kernel.memsys.truth.total_misses()
        kernel.blockops.pfdat_traverse(proc, 0, 256)
        assert kernel.memsys.truth.total_misses() > misses_before

    def test_traverse_wraps_around(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        proc = cpus[0]
        proc.set_mode(Mode.KERNEL)
        kernel.blockops.pfdat_traverse(proc, 8100, 200)  # wraps past 8192
        assert kernel.blockops.traversals == 1

    def test_blockop_emits_escapes_when_instrumented(self):
        from repro.monitor.escapes import Instrumentation

        from repro.common.params import MachineParams
        from repro.cpu.processor import Processor
        from repro.kernel.kernel import Kernel, KernelTuning
        from repro.kernel.vm import VmTuning
        from repro.memsys.system import MemorySystem

        params = MachineParams()
        memsys = MemorySystem(params)
        cpus = [Processor(i, params, memsys) for i in range(4)]
        kernel = Kernel(
            params, memsys, cpus, instr=Instrumentation(),
            tuning=KernelTuning(vm=VmTuning(baseline_frames=64)),
        )
        uncached = memsys.bus_uncached
        kernel.blockops.bclear(cpus[0], 0x500000, 1024)
        # BLOCKOP_BEGIN (1 signal + 3 payloads) + BLOCKOP_END (1 signal).
        assert memsys.bus_uncached - uncached == 5
