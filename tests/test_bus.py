"""Bus broadcast and listener semantics."""

from repro.memsys.bus import Bus, BusOp, BusTransaction


class TestBus:
    def test_transaction_count(self):
        bus = Bus()
        bus.transaction(0, 0, 0x100, BusOp.READ)
        bus.transaction(1, 1, 0x200, BusOp.WRITE)
        assert bus.transaction_count == 2

    def test_listener_receives_all(self):
        bus = Bus()
        seen = []
        bus.attach(seen.append)
        bus.transaction(5, 2, 0x300, BusOp.UNCACHED_READ)
        assert seen == [BusTransaction(5, 2, 0x300, BusOp.UNCACHED_READ)]

    def test_multiple_listeners(self):
        bus = Bus()
        a, b = [], []
        bus.attach(a.append)
        bus.attach(b.append)
        bus.transaction(0, 0, 0, BusOp.READ)
        assert len(a) == len(b) == 1

    def test_detach(self):
        bus = Bus()
        seen = []
        listener = seen.append
        bus.attach(listener)
        bus.detach(listener)
        bus.transaction(0, 0, 0, BusOp.READ)
        assert seen == []

    def test_no_listener_is_cheap_and_counted(self):
        bus = Bus()
        for i in range(10):
            bus.transaction(i, 0, i, BusOp.READ)
        assert bus.transaction_count == 10
