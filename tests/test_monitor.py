"""Hardware monitor and the master tracing process."""

import pytest

from repro.memsys.bus import Bus, BusOp
from repro.monitor.hwmonitor import BufferOverflow, HardwareMonitor
from repro.monitor.master import MasterConfig, MasterTracer


def make_monitor(capacity=100, strict=False):
    bus = Bus()
    monitor = HardwareMonitor(bus, capacity=capacity, strict_capacity=strict)
    return bus, monitor


class TestRecording:
    def test_not_recording_by_default(self):
        bus, monitor = make_monitor()
        bus.transaction(0, 0, 0x100, BusOp.READ)
        assert len(monitor.trace) == 0

    def test_records_when_started(self):
        bus, monitor = make_monitor()
        monitor.start(0)
        bus.transaction(10, 2, 0x100, BusOp.READ)
        monitor.stop(20)
        entries = list(monitor.trace.all_entries())
        assert entries == [(5, 2, 0x100, 0)]  # 10 cycles = 5 ticks

    def test_timestamp_quantization(self):
        bus, monitor = make_monitor()
        monitor.start(0)
        bus.transaction(61, 0, 0x10, BusOp.WRITE)
        monitor.stop(100)
        (tick, _, _, op), = monitor.trace.all_entries()
        assert tick == 30  # 61 cycles / 2 cycles-per-tick
        assert op == 1

    def test_segments_accumulate(self):
        bus, monitor = make_monitor()
        monitor.start(0)
        bus.transaction(1, 0, 0x10, BusOp.READ)
        monitor.stop(10)
        monitor.start(100)
        bus.transaction(101, 0, 0x20, BusOp.READ)
        monitor.stop(110)
        assert len(monitor.trace.segments) == 2
        assert len(monitor.trace) == 2

    def test_segment_duration(self):
        bus, monitor = make_monitor()
        monitor.start(100)
        segment = monitor.stop(600)
        assert segment.duration_cycles() == 500

    def test_fill_fraction(self):
        bus, monitor = make_monitor(capacity=10)
        monitor.start(0)
        for i in range(5):
            bus.transaction(i, 0, i * 16, BusOp.READ)
        assert monitor.fill_fraction() == pytest.approx(0.5)

    def test_strict_overflow_raises(self):
        bus, monitor = make_monitor(capacity=2, strict=True)
        monitor.start(0)
        bus.transaction(0, 0, 0, BusOp.READ)
        bus.transaction(1, 0, 16, BusOp.READ)
        with pytest.raises(BufferOverflow):
            bus.transaction(2, 0, 32, BusOp.READ)

    def test_forgiving_overflow_counts_drops(self):
        bus, monitor = make_monitor(capacity=2)
        monitor.start(0)
        for i in range(4):
            bus.transaction(i, 0, i * 16, BusOp.READ)
        assert monitor.dropped == 2


class TestMasterTracer:
    def make(self, capacity=100, threshold=0.5):
        bus, monitor = make_monitor(capacity=capacity)
        master = MasterTracer(
            monitor, cycles_per_ms=33333.0,
            config=MasterConfig(check_interval_ms=1.0, dump_threshold=threshold),
        )
        return bus, monitor, master

    def test_below_threshold_no_dump(self):
        bus, monitor, master = self.make()
        master.start(0)
        bus.transaction(1, 0, 0x10, BusOp.READ)
        assert master.service(100) == 0
        assert master.dumps == 0

    def test_dump_past_threshold(self):
        bus, monitor, master = self.make(capacity=10, threshold=0.5)
        master.start(0)
        for i in range(6):
            bus.transaction(i, 0, i * 16, BusOp.READ)
        suspend = master.service(1000)
        assert suspend > 0
        assert master.dumps == 1
        assert master.dumped_entries == 6
        # A new segment is recording after the dump.
        assert monitor.recording
        assert monitor.buffered_entries() == 0

    def test_master_prevents_overflow(self):
        """With the master's threshold protocol, a strict buffer never
        overflows even for long activity (the Section 2.1 design goal)."""
        bus, monitor = make_monitor(capacity=50, strict=True)
        master = MasterTracer(
            monitor, cycles_per_ms=33333.0,
            config=MasterConfig(check_interval_ms=0.001, dump_threshold=0.5),
        )
        master.start(0)
        now = 0
        for i in range(1000):
            now += 40
            if master.due(now):
                now += master.service(now)
            bus.transaction(now, 0, (i % 64) * 16, BusOp.READ)
        assert master.dumps > 0

    def test_finish_closes_segment(self):
        bus, monitor, master = self.make()
        master.start(0)
        bus.transaction(1, 0, 0x10, BusOp.READ)
        master.finish(500)
        assert not monitor.recording
        assert len(monitor.trace.segments) == 1

    def test_next_check_advances(self):
        bus, monitor, master = self.make()
        master.start(0)
        assert not master.due(1000)
        assert master.due(50_000)
