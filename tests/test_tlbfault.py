"""TLB fault ladder: UTLB, demand-zero, copy-on-write, text page-in."""

import pytest

from repro.common.types import Mode
from repro.kernel.process import DATA_VBASE, Image, ProcState
from tests.test_fs import drain_disk
from tests.test_kernel_core import dummy_driver, make_kernel


@pytest.fixture
def env():
    kernel, cpus = make_kernel()
    kernel.fs.register_file(50, 8 * 4096, "binary")
    image = Image("prog", text_pages=8, file_ino=50)
    process = kernel.create_process("p", image, dummy_driver())
    process.data_pages = 8
    kernel.current[0] = process
    cpus[0].set_mode(Mode.USER)
    return kernel, cpus, process


class TestTranslateLadder:
    def test_demand_zero_on_first_data_touch(self, env):
        kernel, cpus, process = env
        vpage = DATA_VBASE + 2
        frame = kernel.translate(cpus[0], process, vpage, write=True)
        assert frame is not None
        assert process.data_frames[vpage] == frame
        assert kernel.tlbfaults.demand_zero_faults == 1
        # The page was cleared in full (Table 7's 70% row).
        assert kernel.blockops.clears == 1
        assert kernel.blockops.bytes_cleared == 4096

    def test_tlb_hit_after_fault(self, env):
        kernel, cpus, process = env
        vpage = DATA_VBASE + 2
        kernel.translate(cpus[0], process, vpage, write=False)
        utlb = kernel.tlbfaults.utlb_faults
        kernel.translate(cpus[0], process, vpage, write=False)
        assert kernel.tlbfaults.utlb_faults == utlb  # straight TLB hit

    def test_utlb_fault_after_tlb_eviction(self, env):
        kernel, cpus, process = env
        vpage = DATA_VBASE + 2
        kernel.translate(cpus[0], process, vpage, write=False)
        # Push the mapping out of the 64-entry TLB.
        for i in range(70):
            kernel.translate(cpus[0], process, DATA_VBASE + 3, write=False)
            cpus[0].tlb.insert(
                type(cpus[0].tlb.entries()[0])(999, 1000 + i, 1, False)
            )
        utlb_before = kernel.tlbfaults.utlb_faults
        kernel.translate(cpus[0], process, vpage, write=False)
        assert kernel.tlbfaults.utlb_faults == utlb_before + 1

    def test_utlb_fault_is_cheap(self, env):
        """UTLB faults cost a handful of references (paper: < 0.1 misses
        once warm; a few cold misses on the first one)."""
        kernel, cpus, process = env
        vpage = DATA_VBASE + 2
        kernel.translate(cpus[0], process, vpage, write=False)
        cpus[0].tlb.flush_pid(process.pid)
        misses_before = kernel.memsys.truth.total_misses()
        kernel.translate(cpus[0], process, vpage, write=False)
        assert kernel.memsys.truth.total_misses() - misses_before <= 6

    def test_text_pagein_reads_binary(self, env):
        kernel, cpus, process = env
        frame = kernel.translate(cpus[0], process, 0, write=False)
        if frame is None:  # slept on the binary read
            drain_disk(kernel, cpus[0])
            process.state = ProcState.RUNNING
            kernel.current[0] = process
            frame = kernel.translate(cpus[0], process, 0, write=False)
        assert frame is not None
        assert process.image.frames[0] == frame
        assert kernel.tlbfaults.text_pageins == 1

    def test_shared_text_second_process_cheap_fault(self, env):
        kernel, cpus, process = env
        # Pre-resident image.
        from repro.workloads.base import preload_image

        preload_image(kernel, process.image)
        other = kernel.create_process("q", process.image, dummy_driver())
        kernel.current[1] = other
        cpus[1].set_mode(Mode.USER)
        utlb_before = kernel.tlbfaults.utlb_faults
        expensive_before = kernel.tlbfaults.expensive_faults
        frame = kernel.translate(cpus[1], other, 0, write=False)
        assert frame == process.image.frames[0]
        # Resident shared text resolves on the fast path: no allocation.
        assert kernel.tlbfaults.utlb_faults == utlb_before + 1
        assert kernel.tlbfaults.expensive_faults == expensive_before


class TestCopyOnWrite:
    def _fork_shared_page(self, kernel, cpus, parent):
        vpage = DATA_VBASE + 1
        frame = kernel.translate(cpus[0], parent, vpage, write=True)
        child = kernel.syscalls.fork(cpus[0], parent, "child", dummy_driver())
        return vpage, frame, child

    def test_cow_fault_copies_page(self, env):
        kernel, cpus, parent = env
        vpage, frame, child = self._fork_shared_page(kernel, cpus, parent)
        copies_before = kernel.blockops.copies
        new_frame = kernel.translate(cpus[0], parent, vpage, write=True)
        assert new_frame != frame
        assert kernel.tlbfaults.cow_faults == 1
        assert kernel.blockops.copies == copies_before + 1
        assert vpage not in parent.cow_pages

    def test_read_does_not_cow(self, env):
        kernel, cpus, parent = env
        vpage, frame, child = self._fork_shared_page(kernel, cpus, parent)
        got = kernel.translate(cpus[0], parent, vpage, write=False)
        assert got == frame
        assert kernel.tlbfaults.cow_faults == 0

    def test_sole_survivor_claims_page(self, env):
        kernel, cpus, parent = env
        vpage, frame, child = self._fork_shared_page(kernel, cpus, parent)
        # Child exits: the parent is the only mapper left.
        kernel.teardown_address_space(cpus[0], child)
        cheap_before = kernel.tlbfaults.cheap_faults
        got = kernel.translate(cpus[0], parent, vpage, write=True)
        assert got == frame  # claimed, not copied
        assert kernel.tlbfaults.cow_faults == 0
        assert kernel.tlbfaults.cheap_faults == cheap_before + 1

    def test_both_sides_cow_frees_original(self, env):
        kernel, cpus, parent = env
        vpage, frame, child = self._fork_shared_page(kernel, cpus, parent)
        kernel.translate(cpus[0], parent, vpage, write=True)   # parent copies
        kernel.current[1] = child
        child.state = ProcState.RUNNING
        cpus[1].set_mode(Mode.USER)
        got = kernel.translate(cpus[1], child, vpage, write=True)
        # Child was the last mapper: claims the original frame.
        assert got == frame
