"""Exhibit formatting and the derivation helpers."""

import pytest

from repro.analysis.decode import TraceAnalysis
from repro.common.types import MissClass, RefDomain
from repro.api import Exhibit
from repro.experiments.derive import (
    blockop_shares_pct,
    dmiss_class_shares_pct,
    imiss_class_shares_pct,
    invocation_interval_ms,
    mean_invocation_misses,
    migration_misses,
    migration_shares_pct,
)
from repro.kernel.structures import StructName

OS = RefDomain.OS


class TestExhibitFormatting:
    def make(self) -> Exhibit:
        exhibit = Exhibit("tableX", "Test exhibit", ("a", "b", "c"))
        exhibit.add_row("row1", 1.234, "x")
        exhibit.add_row("row2", 5, "yy")
        exhibit.note("a note")
        return exhibit

    def test_text_contains_everything(self):
        text = self.make().to_text()
        assert "tableX" in text
        assert "row1" in text and "row2" in text
        assert "1.2" in text  # floats to one decimal
        assert "a note" in text

    def test_columns_aligned(self):
        lines = self.make().to_text().splitlines()
        header, rule = lines[1], lines[2]
        assert len(header) == len(rule)

    def test_row_dict(self):
        exhibit = self.make()
        assert exhibit.row_dict()["row1"][1] == 1.234

    def test_empty_exhibit_renders(self):
        exhibit = Exhibit("t", "empty", ("only",))
        assert "empty" in exhibit.to_text()


def synthetic_analysis() -> TraceAnalysis:
    analysis = TraceAnalysis("syn", 4)
    analysis.miss_counts[(OS, "D", MissClass.SHARING)] = 100
    analysis.miss_counts[(OS, "D", MissClass.COLD)] = 60
    analysis.miss_counts[(OS, "I", MissClass.DISPOS)] = 40
    analysis.sharing_by_struct[StructName.KERNEL_STACK] = 30
    analysis.sharing_by_struct[StructName.PCB] = 10
    analysis.sharing_by_struct[StructName.EFRAME] = 5
    analysis.sharing_by_struct[StructName.USTRUCT_REST] = 5
    analysis.sharing_by_struct[StructName.PROC_TABLE] = 20
    analysis.sharing_by_struct[StructName.BUFFER] = 30
    analysis.blockop_misses["copy"] = 16
    analysis.blockop_misses["clear"] = 8
    return analysis


class TestDerivations:
    def test_migration_misses(self):
        counts = migration_misses(synthetic_analysis())
        assert counts["kernel_stack"] == 30
        assert counts["user_structure"] == 20  # PCB + Eframe + rest
        assert counts["process_table"] == 20
        assert counts["total"] == 70

    def test_migration_shares(self):
        shares = migration_shares_pct(synthetic_analysis())
        assert shares["total"] == pytest.approx(100.0 * 70 / 160)

    def test_blockop_shares(self):
        shares = blockop_shares_pct(synthetic_analysis())
        assert shares["copy"] == pytest.approx(10.0)
        assert shares["clear"] == pytest.approx(5.0)
        assert shares["traverse"] == 0.0
        assert shares["total"] == pytest.approx(15.0)

    def test_class_shares_normalized_to_all_os_misses(self):
        analysis = synthetic_analysis()
        i_shares = imiss_class_shares_pct(analysis)
        d_shares = dmiss_class_shares_pct(analysis)
        total = sum(i_shares.values()) + sum(d_shares.values())
        assert total == pytest.approx(100.0)

    def test_empty_analysis_safe(self):
        empty = TraceAnalysis("e", 4)
        assert migration_shares_pct(empty)["total"] == 0.0
        assert blockop_shares_pct(empty)["total"] == 0.0
        assert imiss_class_shares_pct(empty) == {}
        assert invocation_interval_ms(empty) == float("inf")
        assert mean_invocation_misses(empty) == (0.0, 0.0)

    def test_invocation_interval(self):
        from repro.analysis.decode import OsInvocation

        analysis = TraceAnalysis("syn", 4)
        analysis.measured_ticks = 1_000_000
        analysis.invocations = [OsInvocation("io_syscall", 0, 10, 1, 2)] * 100
        # 4M CPU-ticks = 8M cycles over 100 invocations = 80k cycles each
        # = 2.4 ms at 33 MHz.
        assert invocation_interval_ms(analysis) == pytest.approx(2.4)

    def test_mean_invocation_misses(self):
        from repro.analysis.decode import OsInvocation

        analysis = TraceAnalysis("syn", 4)
        analysis.invocations = [
            OsInvocation("io_syscall", 0, 10, 10, 20),
            OsInvocation("interrupt", 0, 10, 30, 40),
        ]
        assert mean_invocation_misses(analysis) == (20.0, 30.0)
