"""Deterministic RNG utilities."""

import pytest
from hypothesis import given, strategies as st

from repro.common.rng import exponential_interval, substream, weighted_choice


class TestSubstream:
    def test_deterministic(self):
        a = substream(42, "kernel")
        b = substream(42, "kernel")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_label_independence(self):
        a = substream(42, "kernel")
        b = substream(42, "disk")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_seed_changes_stream(self):
        a = substream(1, "x")
        b = substream(2, "x")
        assert a.random() != b.random()


class TestWeightedChoice:
    def test_single_item(self):
        rng = substream(0, "t")
        assert weighted_choice(rng, ["only"], [1.0]) == "only"

    def test_zero_weight_never_chosen(self):
        rng = substream(0, "t")
        picks = {weighted_choice(rng, ["a", "b"], [0.0, 1.0]) for _ in range(50)}
        assert picks == {"b"}

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_choice(substream(0, "t"), ["a"], [1.0, 2.0])

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            weighted_choice(substream(0, "t"), ["a"], [0.0])

    @given(st.integers(0, 1000))
    def test_respects_rough_proportions(self, seed):
        rng = substream(seed, "prop")
        counts = {"a": 0, "b": 0}
        for _ in range(200):
            counts[weighted_choice(rng, ["a", "b"], [3.0, 1.0])] += 1
        assert counts["a"] > counts["b"]


class TestExponential:
    def test_positive(self):
        rng = substream(0, "exp")
        assert all(exponential_interval(rng, 5.0) > 0 for _ in range(100))

    def test_mean_approximately_right(self):
        rng = substream(0, "exp")
        samples = [exponential_interval(rng, 10.0) for _ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(10.0, rel=0.1)

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            exponential_interval(substream(0, "e"), 0.0)
