"""Kernel facade: invocations, sleep/wakeup, timers, address spaces."""

import pytest

from repro.common.params import MachineParams
from repro.common.types import HighLevelOp, Mode
from repro.cpu.processor import Processor
from repro.kernel.kernel import Kernel, KernelTuning
from repro.kernel.process import Image, ProcState
from repro.kernel.vm import VmTuning
from repro.memsys.system import MemorySystem


def make_kernel(num_cpus=4, baseline_frames=512):
    params = MachineParams(num_cpus=num_cpus)
    memsys = MemorySystem(params)
    cpus = [Processor(i, params, memsys) for i in range(num_cpus)]
    tuning = KernelTuning(vm=VmTuning(baseline_frames=baseline_frames))
    kernel = Kernel(params, memsys, cpus, tuning=tuning)
    return kernel, cpus


def dummy_driver():
    while True:
        yield None


@pytest.fixture
def kernel_and_cpus():
    return make_kernel()


class TestOsInvocation:
    def test_mode_switches(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        proc = cpus[0]
        with kernel.os_invocation(proc, HighLevelOp.OTHER_SYSCALL):
            assert proc.mode is Mode.KERNEL
        assert proc.mode is Mode.IDLE  # no current process

    def test_mode_returns_to_user_with_process(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        image = Image("x", text_pages=2, file_ino=1)
        process = kernel.create_process("p", image, dummy_driver())
        kernel.current[0] = process
        with kernel.os_invocation(cpus[0], HighLevelOp.IO_SYSCALL):
            pass
        assert cpus[0].mode is Mode.USER

    def test_invocation_counted(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        with kernel.os_invocation(cpus[0], HighLevelOp.INTERRUPT):
            pass
        assert kernel.invocation_ops[HighLevelOp.INTERRUPT] == 1

    def test_nested_invocations(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        proc = cpus[0]
        with kernel.os_invocation(proc, HighLevelOp.IO_SYSCALL):
            with kernel.os_invocation(proc, HighLevelOp.INTERRUPT):
                assert kernel.in_kernel(0)
            assert proc.mode is Mode.KERNEL  # still inside the outer one
        assert not kernel.in_kernel(0)

    def test_op_cycles_accumulate(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        with kernel.os_invocation(cpus[0], HighLevelOp.OTHER_SYSCALL):
            cpus[0].advance(1234)
        assert kernel.op_cycles[HighLevelOp.OTHER_SYSCALL] >= 1234


class TestProcessLifecycle:
    def test_create_assigns_pid_and_slot(self, kernel_and_cpus):
        kernel, _ = kernel_and_cpus
        image = Image("x", text_pages=1, file_ino=1)
        a = kernel.create_process("a", image, dummy_driver())
        b = kernel.create_process("b", image, dummy_driver())
        assert a.pid != b.pid
        assert a.slot != b.slot
        assert image.refcount == 2

    def test_free_recycles_slot(self, kernel_and_cpus):
        kernel, _ = kernel_and_cpus
        image = Image("x", text_pages=1, file_ino=1)
        a = kernel.create_process("a", image, dummy_driver())
        slot = a.slot
        kernel.free_process(a)
        b = kernel.create_process("b", image, dummy_driver())
        assert b.slot == slot

    def test_teardown_frees_private_frames(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        image = Image("x", text_pages=1, file_ino=1)
        process = kernel.create_process("a", image, dummy_driver())
        frame = kernel.vm.alloc_frame(cpus[0], "data", (process.pid, 0x100))
        process.data_frames[0x100] = frame
        free_before = kernel.memsys.memory.free_frame_count()
        kernel.teardown_address_space(cpus[0], process)
        assert kernel.memsys.memory.free_frame_count() == free_before + 1
        assert process.data_frames == {}

    def test_teardown_keeps_shared_frames(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        image = Image("x", text_pages=1, file_ino=1)
        a = kernel.create_process("a", image, dummy_driver())
        b = kernel.create_process("b", image, dummy_driver())
        frame = kernel.vm.alloc_frame(cpus[0], "data", (a.pid, 0x100))
        a.data_frames[0x100] = frame
        b.data_frames[0x100] = frame
        kernel.share_frame(frame)
        free_before = kernel.memsys.memory.free_frame_count()
        kernel.teardown_address_space(cpus[0], a)
        assert kernel.memsys.memory.free_frame_count() == free_before
        assert not kernel.frame_shared(frame)


class TestSleepWakeup:
    def test_wakeup_requeues_sleepers(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        image = Image("x", text_pages=1, file_ino=1)
        process = kernel.create_process("a", image, dummy_driver())
        kernel.sleep(process, ("chan", 1))
        assert process.state is ProcState.SLEEPING
        woken = kernel.wakeup(("chan", 1), cpus[0])
        assert woken == 1
        assert process.state is ProcState.RUNNABLE
        assert process in kernel.scheduler.run_queue

    def test_wakeup_empty_channel(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        assert kernel.wakeup(("nobody",), cpus[0]) == 0

    def test_sleep_boosts_priority(self, kernel_and_cpus):
        kernel, _ = kernel_and_cpus
        image = Image("x", text_pages=1, file_ino=1)
        process = kernel.create_process("a", image, dummy_driver())
        process.priority = 30
        kernel.sleep(process, "c")
        assert process.priority == 28


class TestTimers:
    def test_timer_fires_at_deadline(self, kernel_and_cpus):
        kernel, cpus = kernel_and_cpus
        image = Image("x", text_pages=1, file_ino=1)
        process = kernel.create_process("a", image, dummy_driver())
        kernel.sleep_until(process, 1000)
        cpus[0].advance(500)
        assert kernel.pop_due_timers(cpus[0]) == []
        cpus[0].advance(600)
        assert kernel.pop_due_timers(cpus[0]) == [process]

    def test_next_timer_cycles(self, kernel_and_cpus):
        kernel, _ = kernel_and_cpus
        assert kernel.next_timer_cycles() is None
        image = Image("x", text_pages=1, file_ino=1)
        process = kernel.create_process("a", image, dummy_driver())
        kernel.sleep_until(process, 777)
        assert kernel.next_timer_cycles() == 777


class TestFrameRefcounting:
    def test_share_unshare(self, kernel_and_cpus):
        kernel, _ = kernel_and_cpus
        assert not kernel.frame_shared(42)
        kernel.share_frame(42)
        assert kernel.frame_shared(42)
        kernel.unshare_frame(42)
        assert not kernel.frame_shared(42)

    def test_routine_span(self, kernel_and_cpus):
        kernel, _ = kernel_and_cpus
        base, size = kernel.routine_span("bcopy")
        assert size == 256
        assert kernel.layout.routine_at(base) == "bcopy"
