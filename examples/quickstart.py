#!/usr/bin/env python
"""Quickstart: trace one workload and print the paper's headline numbers.

Builds the modelled SGI 4D/340 (four R3000 CPUs, 64 KB I-caches,
64+256 KB data caches, snooping bus), boots the synthetic IRIX-like
kernel, runs the Pmake workload under the bus monitor, and pushes the
recorded trace through the full analysis pipeline — exactly the paper's
methodology, end to end.

Run:  python examples/quickstart.py [workload] [horizon_ms]
"""

import sys

from repro import analyze_trace, run_traced_workload
from repro.common.types import RefDomain


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "pmake"
    horizon_ms = float(sys.argv[2]) if len(sys.argv) > 2 else 40.0

    print(f"tracing {workload} for {horizon_ms:.0f} ms "
          "(after 300 ms of warmup) ...")
    run = run_traced_workload(workload, horizon_ms=horizon_ms,
                              warmup_ms=300.0, seed=1)
    print(f"recorded {len(run.trace):,} bus transactions in "
          f"{len(run.trace.segments)} segment(s)")

    report = analyze_trace(run)
    analysis = report.analysis

    print()
    print(f"== {workload}: Table 1 style summary ==")
    print(f"  user / system / idle time : "
          f"{report.user_pct:.1f}% / {report.sys_pct:.1f}% / "
          f"{report.idle_pct:.1f}%")
    print(f"  OS misses / all misses    : {report.os_miss_fraction_pct:.1f}%")
    print(f"  stall, all misses         : {report.total_stall_pct:.1f}% "
          "of non-idle time")
    print(f"  stall, OS misses          : {report.os_stall_pct:.1f}%")
    print(f"  stall, OS + OS-induced    : "
          f"{report.os_plus_induced_stall_pct:.1f}%")

    print()
    print("== OS miss classification (Table 2 classes) ==")
    os_total = analysis.total_misses(RefDomain.OS)
    for kind, label in (("I", "instruction"), ("D", "data")):
        counts = analysis.class_counts(RefDomain.OS, kind)
        shares = ", ".join(
            f"{cls.value}={100.0 * n / os_total:.1f}%"
            for cls, n in sorted(counts.items(), key=lambda kv: -kv[1])
        )
        print(f"  {label:12s}: {shares}")

    print()
    print("== the paper's three major OS miss sources ==")
    from repro.experiments.derive import (
        blockop_miss_total,
        migration_misses,
        os_misses,
    )

    print(f"  instruction fetches : {os_misses(analysis, 'I'):,} misses")
    print(f"  process migration   : {migration_misses(analysis)['total']:,} "
          "sharing misses on per-process state")
    print(f"  block operations    : {blockop_miss_total(analysis):,} misses "
          f"in {len(analysis.blockop_log)} copy/clear/traversal sweeps")


if __name__ == "__main__":
    main()
