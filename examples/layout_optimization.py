#!/usr/bin/env python
"""Profile-driven kernel code layout, end to end.

The paper's Figure 5 shows OS self-interference misses spiking in a few
routines that collide in the direct-mapped I-cache and suggests
relaying out the OS code, noting that loop-oriented layout techniques
don't fit loop-less kernel paths ("it is beyond the scope of this paper
to consider these techniques"). This example carries the suggestion out:

1. trace a Pmake run and profile OS I-misses per routine,
2. repack the kernel text so hot routines stop fighting for cache sets,
3. re-run the identical workload on the optimized image.

Run:  python examples/layout_optimization.py
"""

from repro.analysis.report import analyze_trace
from repro.common.types import MissClass, RefDomain
from repro.opt import optimize_layout, routine_heat_from_analysis
from repro.api import Simulation

HORIZON_MS = 30.0
WARMUP_MS = 250.0
SEED = 5


def profile(label, layout=None):
    sim = Simulation("pmake", seed=SEED, layout=layout)
    run = sim.run(HORIZON_MS, warmup_ms=WARMUP_MS)
    report = analyze_trace(run, keep_imiss_stream=False)
    analysis = report.analysis
    dispos = analysis.miss_counts.get((RefDomain.OS, "I", MissClass.DISPOS), 0)
    total_i = sum(
        count for (dom, kind, _c), count in analysis.miss_counts.items()
        if dom is RefDomain.OS and kind == "I"
    )
    print(f"{label:10s} OS I-misses {total_i:6d}  of which Dispos {dispos:6d} "
          f"  OS stall {report.os_stall_pct:4.1f}%")
    return run, report


def main() -> None:
    print("profiling the default kernel image ...")
    run, report = profile("default")

    heat = routine_heat_from_analysis(report.analysis)
    worst = sorted(heat.items(), key=lambda kv: -kv[1])[:5]
    print("\nhottest routines (OS I-misses):")
    for name, misses in worst:
        routine = run.kernel.layout.routine(name)
        print(f"  {name:20s} {misses:6.0f} misses at I-cache offset "
              f"{routine.cache_offset() // 1024:2d} KB")

    plan = optimize_layout(run.kernel.layout, heat)
    print(f"\n{plan.summary()}")

    print("\nre-running on the optimized image ...")
    profile("optimized", layout=plan.build())


if __name__ == "__main__":
    main()
