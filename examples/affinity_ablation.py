#!/usr/bin/env python
"""Ablation: cache-affinity scheduling vs the IRIX default.

The paper proposes affinity scheduling as the cure for migration misses
("Affinity scheduling is one technique that removes misses by
encouraging processes to remain in the same CPU while still tolerating
process migration for load balance", Section 4.2.2). This experiment is
the paper's suggestion actually carried out: run Multpgm twice — once
with the default take-the-best-priority scheduler, once preferring
same-CPU processes — and compare migrations and migration misses.

Run:  python examples/affinity_ablation.py
"""

from repro.analysis.report import analyze_trace
from repro.experiments.derive import migration_misses
from repro.kernel.kernel import KernelTuning
from repro.kernel.vm import VmTuning
from repro.sim.config import CALIBRATIONS
from repro.api import Simulation


def run_once(affinity: bool):
    calibration = CALIBRATIONS["multpgm"]
    tuning = KernelTuning(
        quantum_ms=calibration.quantum_ms,
        affinity_scheduling=affinity,
        vm=VmTuning(baseline_frames=calibration.baseline_frames),
    )
    sim = Simulation("multpgm", seed=4, tuning=tuning)
    run = sim.run(40.0, warmup_ms=300.0)
    report = analyze_trace(run, keep_imiss_stream=False)
    sched = sim.kernel.scheduler
    return {
        "migrations": sched.migrations,
        "context_switches": sched.context_switches,
        "migration_misses": migration_misses(report.analysis)["total"],
        "os_stall_pct": report.os_stall_pct,
    }


def main() -> None:
    print("running Multpgm with the default scheduler ...")
    default = run_once(affinity=False)
    print("running Multpgm with affinity scheduling ...")
    affinity = run_once(affinity=True)

    print()
    print(f"{'metric':24s} {'default':>10s} {'affinity':>10s} {'change':>9s}")
    for key in ("context_switches", "migrations", "migration_misses",
                "os_stall_pct"):
        a, b = default[key], affinity[key]
        change = (b - a) / a * 100.0 if a else 0.0
        print(f"{key:24s} {a:10.1f} {b:10.1f} {change:8.1f}%")
    print()
    if affinity["migration_misses"] < default["migration_misses"]:
        print("affinity scheduling removed migration misses, as the paper "
              "predicts (Section 4.2.2)")
    else:
        print("no improvement at this load point — try a longer window")


if __name__ == "__main__":
    main()
