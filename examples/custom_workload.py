#!/usr/bin/env python
"""Build a custom workload against the public API and measure it.

Downstream users are not limited to the paper's three workloads: a
workload is just processes yielding actions. This example defines a tiny
"web-server-ish" load — one accept loop forking short-lived request
handlers that read a document and write a log — and measures its OS
behaviour the way the paper would.

Run:  python examples/custom_workload.py
"""

import itertools

from repro.analysis.report import analyze_trace
from repro.common.types import RefDomain
from repro.kernel.process import Image, ProcState
from repro.api import Simulation
from repro.workloads import actions as A
from repro.workloads.base import Workload, preload_image

SERVER_BIN = 700
DOC0 = 710
NUM_DOCS = 12
LOG = 750


class ToyServerWorkload(Workload):
    """An accept loop + forked request handlers."""

    name = "toyserver"

    def __init__(self) -> None:
        super().__init__()
        self.image = Image("server", text_pages=24, file_ino=SERVER_BIN)
        self._rng = None

    def setup(self, kernel, rng) -> None:
        self._rng = rng
        kernel.fs.register_file(SERVER_BIN, self.image.text_pages * 4096,
                                "server")
        for i in range(NUM_DOCS):
            kernel.fs.register_file(DOC0 + i, 24 * 1024, f"doc{i}.html")
        kernel.fs.register_file(LOG, 0, "access.log")
        preload_image(kernel, self.image)
        accept = kernel.create_process("accept", self.image,
                                       self.accept_loop())
        accept.data_pages = 8
        accept.state = ProcState.RUNNABLE
        kernel.scheduler.run_queue.append(accept)

    def accept_loop(self):
        rng = self._rng
        for request in itertools.count():
            yield A.Compute(4000)                      # poll/accept
            fork = A.Fork(f"req-{request}", self._handler_factory())
            yield fork
            yield A.SleepFor(rng.uniform(0.3, 1.5))    # request arrivals

    def _handler_factory(self):
        def factory():
            return self.handler()
        return factory

    def handler(self):
        rng = self._rng
        doc = DOC0 + rng.randrange(NUM_DOCS)
        yield A.Compute(3000)                      # parse the request
        yield A.OpenFile(doc)
        yield A.ReadFile(doc, 0, 16 * 1024)        # serve the document
        yield A.Compute(12_000, write_fraction=0.2)
        yield A.WriteFile(LOG, rng.randrange(64) * 1024, 256)
        yield A.Misc("time")
        # handler exits


def main() -> None:
    sim = Simulation(ToyServerWorkload(), seed=11)
    run = sim.run(40.0, warmup_ms=150.0)
    report = analyze_trace(run, keep_imiss_stream=False)
    analysis = report.analysis

    print("toy server under the paper's methodology:")
    print(f"  time split     : user {report.user_pct:.1f}% / "
          f"sys {report.sys_pct:.1f}% / idle {report.idle_pct:.1f}%")
    print(f"  OS miss share  : {report.os_miss_fraction_pct:.1f}%")
    print(f"  OS stall       : {report.os_stall_pct:.1f}% of non-idle time")
    print(f"  forks serviced : {sim.kernel.syscalls.counts['fork']}")
    counts = analysis.class_counts(RefDomain.OS)
    top = ", ".join(f"{cls.value}={n}" for cls, n
                    in sorted(counts.items(), key=lambda kv: -kv[1])[:4])
    print(f"  OS miss classes: {top}")


if __name__ == "__main__":
    main()
