#!/usr/bin/env python
"""Deep-profile the OS on one workload: where do its misses come from?

Reproduces the paper's Section 4 drill-down for a single workload:

- miss classification split I/D (Figures 4/7),
- Sharing misses by kernel data structure (Figure 8),
- self-interference instruction misses by routine (Figure 5),
- misses by high-level operation (Figure 9),
- per-lock statistics (Table 12).

Run:  python examples/os_profile.py [workload]
"""

import sys

from repro import analyze_trace, run_traced_workload
from repro.analysis.lockstats import lock_table_rows
from repro.common.types import RefDomain


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "multpgm"
    run = run_traced_workload(workload, horizon_ms=50.0, warmup_ms=350.0,
                              seed=2)
    report = analyze_trace(run)
    analysis = report.analysis
    os_total = analysis.total_misses(RefDomain.OS)
    print(f"{workload}: {os_total:,} OS misses in the measured window")

    print("\n== Sharing misses by data structure (Figure 8) ==")
    total_sharing = sum(analysis.sharing_by_struct.values())
    for struct, count in analysis.sharing_by_struct.most_common(10):
        print(f"  {struct.value:28s} {100.0 * count / max(1, total_sharing):5.1f}%")

    print("\n== Dispos I-misses by routine (Figure 5) ==")
    for name, count in analysis.imiss_dispos_by_routine.most_common(8):
        routine = run.kernel.layout.routine(name)
        print(f"  {name:22s} {count:6d} misses  "
              f"(I-cache offset {routine.cache_offset() // 1024} KB)")

    print("\n== misses by high-level operation (Figure 9) ==")
    ops = {}
    for (label, kind), count in analysis.op_misses.items():
        ops.setdefault(label, {"I": 0, "D": 0})[kind] += count
    for label, kinds in sorted(ops.items(),
                               key=lambda kv: -(kv[1]["I"] + kv[1]["D"])):
        print(f"  {label:22s} I={100.0 * kinds['I'] / os_total:5.1f}%  "
              f"D={100.0 * kinds['D'] / os_total:5.1f}%")

    print("\n== lock statistics (Table 12 style) ==")
    total_cycles = max(proc.cycles for proc in run.processors)
    header = (f"  {'lock':12s} {'kcyc/acq':>9s} {'failed%':>8s} "
              f"{'waiters':>8s} {'local%':>7s} {'cached%':>8s}")
    print(header)
    for row in lock_table_rows(run.kernel, total_cycles, min_acquires=20)[:8]:
        print(f"  {row.name:12s} {row.kcycles_between_acquires:9.1f} "
              f"{row.failed_pct:8.1f} {row.waiters_if_any:8.2f} "
              f"{row.same_cpu_no_intervening_pct:7.1f} "
              f"{row.cached_to_uncached_pct:8.1f}")


if __name__ == "__main__":
    main()
