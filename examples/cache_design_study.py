#!/usr/bin/env python
"""Cache design study: replay a workload's I-miss stream against
alternative I-cache designs (the Figure 6 methodology as a tool).

Shows the paper's trick in library form: because the machine's caches
are direct mapped and physically addressed, the recorded miss stream of
the real machine is enough to simulate any larger or more associative
cache exactly — no re-run needed.

Run:  python examples/cache_design_study.py [workload]
"""

import sys

from repro import analyze_trace, run_traced_workload
from repro.analysis.sweeps import simulate_icache_sweep


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "pmake"
    run = run_traced_workload(workload, horizon_ms=40.0, warmup_ms=300.0,
                              seed=3)
    analysis = analyze_trace(run).analysis
    stream = analysis.imiss_stream
    print(f"{workload}: replaying {len(stream):,} instruction misses "
          "against candidate caches")

    points = simulate_icache_sweep(
        stream, run.params.num_cpus,
        sizes=(64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024),
        associativities=(1, 2),
    )
    base = next(p for p in points
                if p.size_bytes == 64 * 1024 and p.associativity == 1)

    print()
    print(f"{'size':>8s} {'assoc':>6s} {'OS misses':>11s} "
          f"{'relative':>9s} {'inval floor':>12s}")
    for point in sorted(points, key=lambda p: (p.associativity, p.size_bytes)):
        rel = point.os_misses / base.os_misses if base.os_misses else 0.0
        inval = (point.os_inval_misses / base.os_misses
                 if base.os_misses else 0.0)
        print(f"{point.size_bytes // 1024:>6d}KB {point.associativity:>6d} "
              f"{point.os_misses:>11,} {rel:>9.3f} "
              f"{inval:>12.3f}")
    print()
    print("the direct-mapped curve flattens against the invalidation floor "
          "(Figure 6); two-way associativity removes the conflict misses")


if __name__ == "__main__":
    main()
